#include "sim_runtime/sim_network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace fastcons {
namespace {

// XOR-salt for the fault stream's seed so it can never coincide with the
// driver stream Rng(config_.seed) or any per-node stream split from it.
constexpr std::uint64_t kFaultSeedSalt = 0xFA171F1A57C0FFEEull;

}  // namespace

SimNetwork::SimNetwork(Graph graph, std::shared_ptr<const DemandModel> demand,
                       SimConfig config) {
  wire(std::make_shared<const Graph>(std::move(graph)), std::move(demand),
       std::move(config));
}

SimNetwork::SimNetwork(std::shared_ptr<const Graph> graph,
                       std::shared_ptr<const DemandModel> demand,
                       SimConfig config) {
  wire(std::move(graph), std::move(demand), std::move(config));
}

void SimNetwork::reset(Graph graph, std::shared_ptr<const DemandModel> demand,
                       SimConfig config) {
  reset(std::make_shared<const Graph>(std::move(graph)), std::move(demand),
        std::move(config));
}

void SimNetwork::reset(std::shared_ptr<const Graph> graph,
                       std::shared_ptr<const DemandModel> demand,
                       SimConfig config) {
  sim_.reset();
  overlay_latency_.clear();
  outages_.clear();
  holding_count_.clear();
  dropped_ = 0;
  summary_revision_ = 0;
  consistent_revision_ = ~std::uint64_t{0};
  consistent_cache_ = false;
  on_delivery = nullptr;
  on_crash = nullptr;
  on_restart = nullptr;
  // first_seen_ inner vectors keep their capacity for the surviving nodes;
  // wire() resizes the outer vector to the new node count.
  for (auto& seen : first_seen_) seen.clear();
  wire(std::move(graph), std::move(demand), std::move(config));
}

void SimNetwork::wire(std::shared_ptr<const Graph> graph,
                      std::shared_ptr<const DemandModel> demand,
                      SimConfig config) {
  if (graph == nullptr) throw ConfigError("SimNetwork needs a topology");
  if (demand == nullptr) throw ConfigError("SimNetwork needs a demand model");
  if (demand->size() != graph->size()) {
    throw ConfigError("demand model size does not match topology size");
  }
  if (config.loss_rate < 0.0 || config.loss_rate >= 1.0) {
    throw ConfigError("loss rate must be in [0, 1)");
  }
  graph_ = std::move(graph);
  demand_ = std::move(demand);
  config_ = config;
  rng_ = Rng(config_.seed);

  const std::size_t n = graph_->size();
  // Rebuilding the plan every wire() is what makes pooled reset exact: all
  // fault state (including its RNG position) restarts from the config.
  faults_.reset(config_.faults, n, config_.seed ^ kFaultSeedSalt);
  engines_.reserve(n);
  node_rngs_.reserve(n);
  node_rngs_.clear();
  // A pooled network shrinking to a smaller topology drops surplus engines;
  // their storage is the one piece reset() cannot retain.
  if (engines_.size() > n) {
    engines_.erase(engines_.begin() + static_cast<std::ptrdiff_t>(n),
                   engines_.end());
  }
  first_seen_.resize(n);
  planned_writes_.assign(n, 0);
  node_applied_.assign(n, 0);
  node_digest_.assign(n, 0);
  for (NodeId node = 0; node < n; ++node) {
    // The engine copies the ids out of this scratch list, so one buffer
    // serves every node of every trial.
    scratch_neighbours_.clear();
    scratch_neighbours_.reserve(graph_->neighbours(node).size());
    for (const Edge& e : graph_->neighbours(node)) {
      scratch_neighbours_.push_back(e.peer);
    }
    // Draw order matches the historical constructor exactly: one next_u64
    // per engine, then one split per node RNG.
    if (node < engines_.size()) {
      engines_[node].reset(node, scratch_neighbours_, config_.protocol,
                           rng_.next_u64());
    } else {
      engines_.emplace_back(node, scratch_neighbours_, config_.protocol,
                            rng_.next_u64());
    }
    node_rngs_.push_back(rng_.split());
  }
  // Prime demand knowledge at t=0.
  for (NodeId node = 0; node < n; ++node) {
    refresh_own_demand(node);
    if (config_.prime_tables) {
      for (const Edge& e : graph_->neighbours(node)) {
        engines_[node].prime_neighbour_demand(
            e.peer, demand_->demand_at(e.peer, 0.0), 0.0);
      }
    }
    install_delivery_hook(node);
  }
  start_timers();
  // Seed the churn schedule: each node's first crash, in node order so the
  // fault-stream draw order is fixed. Gaps past churn_until fire crash_tick
  // but crash nothing (it re-checks the window).
  if (faults_.churn_active(0.0)) {
    for (NodeId node = 0; node < n; ++node) {
      sim_.schedule_at(faults_.first_crash_gap(),
                       [this, node] { crash_tick(node); });
    }
  }
}

void SimNetwork::install_delivery_hook(NodeId node) {
  EngineHooks hooks;
  hooks.on_delivery = [this, node](const Update& u, DeliveryPath path,
                                   SimTime now) {
    // Any application may change this node's summary — including one the
    // tracker already counted before a crash wiped the node. The revision
    // only keys the all_consistent() cache, so bumping it unconditionally
    // is digest-neutral; skipping it would leave a stale "inconsistent"
    // verdict cached while a wiped node re-applies old updates.
    ++summary_revision_;
    auto& seen = first_seen_[node];
    const auto it = std::lower_bound(
        seen.begin(), seen.end(), u.id,
        [](const auto& entry, UpdateId id) { return entry.first < id; });
    if (it == seen.end() || it->first != u.id) {
      seen.emplace(it, u.id, now);
      const auto hold = std::lower_bound(
          holding_count_.begin(), holding_count_.end(), u.id,
          [](const auto& entry, UpdateId id) { return entry.first < id; });
      if (hold != holding_count_.end() && hold->first == u.id) {
        ++hold->second;
      } else {
        holding_count_.emplace(hold, u.id, 1);
      }
      ++node_applied_[node];
      node_digest_[node] ^= UpdateIdHash{}(u.id);
      if (on_delivery) on_delivery(node, u, path, now);
    }
  };
  engines_[node].set_hooks(std::move(hooks));
}

ReplicaEngine& SimNetwork::engine(NodeId n) {
  FASTCONS_EXPECTS(n < engines_.size());
  return engines_[n];
}

const ReplicaEngine& SimNetwork::engine(NodeId n) const {
  FASTCONS_EXPECTS(n < engines_.size());
  return engines_[n];
}

std::uint64_t SimNetwork::edge_key(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void SimNetwork::refresh_own_demand(NodeId n) {
  engines_[n].set_own_demand(demand_->demand_at(n, sim_.now()));
}

void SimNetwork::start_timers() {
  const ProtocolConfig& proto = config_.protocol;
  for (NodeId node = 0; node < engines_.size(); ++node) {
    // First session: exponential gap for Poisson timing, uniform phase for
    // periodic timing — either way nodes are desynchronised.
    const SimTime first =
        config_.timing == SimConfig::Timing::exponential
            ? node_rngs_[node].exponential(proto.session_period)
            : node_rngs_[node].uniform(0.0, proto.session_period);
    sim_.schedule_at(first, [this, node] { session_tick(node); });

    if (proto.advert_period > 0.0) {
      sim_.schedule_at(node_rngs_[node].uniform(0.0, proto.advert_period),
                       [this, node] { advert_tick(node); });
    }
  }
}

void SimNetwork::session_tick(NodeId node) {
  // A crashed node skips its timer body but still reschedules (and still
  // draws its gap below): its RNG stream keeps the exact positions it has
  // in a fault-free run, so enabling churn perturbs no other stream.
  if (!faults_.node_down(node)) {
    refresh_own_demand(node);
    scratch_out_.clear();
    engines_[node].on_session_timer(sim_.now(), scratch_out_);
    dispatch(node, scratch_out_);
  }
  // Draw the next gap after dispatching, exactly where the retired closure
  // version drew it, so per-node RNG streams are reproduced draw-for-draw.
  const SimTime gap =
      config_.timing == SimConfig::Timing::exponential
          ? node_rngs_[node].exponential(config_.protocol.session_period)
          : config_.protocol.session_period;
  sim_.schedule_in(gap, [this, node] { session_tick(node); });
}

void SimNetwork::advert_tick(NodeId node) {
  if (!faults_.node_down(node)) {
    refresh_own_demand(node);
    scratch_out_.clear();
    engines_[node].on_advert_timer(sim_.now(), scratch_out_);
    dispatch(node, scratch_out_);
  }
  sim_.schedule_in(config_.protocol.advert_period,
                   [this, node] { advert_tick(node); });
}

void SimNetwork::crash_tick(NodeId node) {
  // Re-check the window: the scheduled gap may have landed past churn_until
  // (or churn may have been meant to end while this event was in flight).
  if (!faults_.churn_active(sim_.now())) return;
  const FaultPlan::CrashOutcome outcome = faults_.on_crash(node, sim_.now());
  if (outcome.wipe) {
    scratch_neighbours_.clear();
    for (const Edge& e : graph_->neighbours(node)) {
      scratch_neighbours_.push_back(e.peer);
    }
    // The wipe loses data, not identity: the origin write counter survives
    // (see restore_write_seq) so post-restart writes keep the sequence ids
    // schedule_write promised and never collide with pre-crash writes that
    // peers still hold.
    const SeqNo write_seq = engines_[node].write_seq();
    engines_[node].reset(node, scratch_neighbours_, config_.protocol,
                         outcome.wipe_seed);
    engines_[node].restore_write_seq(write_seq);
    install_delivery_hook(node);
    // The wiped summary changed without a delivery; drop the cached
    // all_consistent() verdict. (Overlay neighbours are graph-external and
    // are not restored — the faults family runs on plain topologies.)
    ++summary_revision_;
  }
  if (on_crash) on_crash(node, outcome.wipe, sim_.now());
  sim_.schedule_in(outcome.downtime, [this, node] { restart_tick(node); });
}

void SimNetwork::restart_tick(NodeId node) {
  const bool wiped = config_.faults.wipe_on_restart;
  const std::optional<double> next_gap = faults_.on_restart(node, sim_.now());
  if (wiped) {
    // Re-prime the reborn engine's demand knowledge like wire() does at
    // t=0; a retained engine kept its tables.
    refresh_own_demand(node);
    if (config_.prime_tables) {
      for (const Edge& e : graph_->neighbours(node)) {
        engines_[node].prime_neighbour_demand(
            e.peer, demand_->demand_at(e.peer, sim_.now()), sim_.now());
      }
    }
  }
  if (on_restart) on_restart(node, wiped, sim_.now());
  if (next_gap) {
    sim_.schedule_in(*next_gap, [this, node] { crash_tick(node); });
  }
}

UpdateId SimNetwork::schedule_write(NodeId node, std::string key,
                                    std::string value, SimTime at) {
  FASTCONS_EXPECTS(node < engines_.size());
  const UpdateId id{node, ++planned_writes_[node]};
  sim_.schedule_at(at, [this, node, key = std::move(key),
                        value = std::move(value)]() mutable {
    perform_write(node, std::move(key), std::move(value));
  });
  return id;
}

void SimNetwork::perform_write(NodeId node, std::string key,
                               std::string value) {
  if (faults_.node_down(node)) {
    // The client retries as soon as the node is back. At equal timestamps
    // the restart event wins: it was inserted when the crash fired, before
    // this deferral, and the simulator runs same-time events in insertion
    // order. perform_write re-checks anyway in case of a back-to-back crash.
    ++faults_.stats().writes_deferred;
    sim_.schedule_at(faults_.down_until(node),
                     [this, node, key = std::move(key),
                      value = std::move(value)]() mutable {
                       perform_write(node, std::move(key), std::move(value));
                     });
    return;
  }
  refresh_own_demand(node);
  scratch_out_.clear();
  engines_[node].local_write(std::move(key), std::move(value), sim_.now(),
                             scratch_out_);
  dispatch(node, scratch_out_);
}

void SimNetwork::add_overlay_link(NodeId a, NodeId b, double latency) {
  FASTCONS_EXPECTS(a < engines_.size() && b < engines_.size());
  FASTCONS_EXPECTS(a != b);
  FASTCONS_EXPECTS(latency >= 0.0);
  overlay_latency_[edge_key(a, b)] = latency;
  engines_[a].add_overlay_neighbour(b, sim_.now());
  engines_[b].add_overlay_neighbour(a, sim_.now());
  if (config_.prime_tables) {
    engines_[a].prime_neighbour_demand(b, demand_->demand_at(b, sim_.now()),
                                       sim_.now());
    engines_[b].prime_neighbour_demand(a, demand_->demand_at(a, sim_.now()),
                                       sim_.now());
  }
}

void SimNetwork::add_link_failure(NodeId a, NodeId b, SimTime down_at,
                                  SimTime up_at) {
  FASTCONS_EXPECTS(down_at <= up_at);
  outages_[edge_key(a, b)].push_back(Outage{down_at, up_at});
}

double SimNetwork::link_latency(NodeId a, NodeId b) const {
  if (const Edge* edge = graph_->find_edge(a, b)) return edge->latency;
  const auto it = overlay_latency_.find(edge_key(a, b));
  if (it != overlay_latency_.end()) return it->second;
  throw ConfigError("message between non-adjacent nodes");
}

bool SimNetwork::link_down(NodeId a, NodeId b, SimTime at) const {
  const auto it = outages_.find(edge_key(a, b));
  if (it == outages_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [at](const Outage& o) {
                       return at >= o.down_at && at < o.up_at;
                     });
}

void SimNetwork::dispatch(NodeId from, std::vector<Outbound>& outs) {
  for (Outbound& out : outs) {
    // Decide the drop before touching the payload: a lost message must not
    // pay for a capture, and nothing below ever copies — the Message moves
    // from the engine's Outbound into the event closure and on into the
    // receiving engine. (Each Outbound owns a distinct Message, so there is
    // no genuine fan-out sharing to justify a shared_ptr payload.)
    if (link_down(from, out.to, sim_.now()) ||
        (config_.loss_rate > 0.0 && rng_.bernoulli(config_.loss_rate))) {
      ++dropped_;
      continue;
    }
    if (faults_.enabled()) {
      // All per-message fault decisions happen here, at send time, from the
      // fault plan's own stream. Messages already in flight when a
      // partition starts still arrive (send-time semantics).
      if (faults_.crossing_partition(from, out.to, sim_.now())) {
        ++dropped_;
        ++faults_.stats().partition_drops;
        continue;
      }
      const FaultPlan::LinkFate fate = faults_.link_fate();
      if (fate.lost) {
        ++dropped_;
        continue;
      }
      const double latency = link_latency(from, out.to);
      if (fate.duplicated) {
        // The copy pays for the one Message copy in the layer; it only
        // happens on the duplicate path.
        sim_.schedule_in(latency + fate.dup_extra_delay,
                         [this, from, to = out.to, msg = out.msg]() mutable {
                           deliver(from, to, std::move(msg));
                         });
      }
      sim_.schedule_in(latency + fate.extra_delay,
                       [this, from, to = out.to,
                        msg = std::move(out.msg)]() mutable {
                         deliver(from, to, std::move(msg));
                       });
      continue;
    }
    const double latency = link_latency(from, out.to);
    sim_.schedule_in(latency, [this, from, to = out.to,
                               msg = std::move(out.msg)]() mutable {
      deliver(from, to, std::move(msg));
    });
  }
}

void SimNetwork::deliver(NodeId from, NodeId to, Message&& msg) {
  if (faults_.node_down(to)) {
    // The receiver is crashed: the message is lost at its doorstep. Checked
    // at delivery (not send) time so a message racing a crash behaves like
    // the real network — and the check is draw-free either way.
    ++dropped_;
    ++faults_.stats().crash_drops;
    return;
  }
  refresh_own_demand(to);  // gradient decisions use current demand
  scratch_out_.clear();
  engines_[to].handle(from, std::move(msg), sim_.now(), scratch_out_);
  dispatch(to, scratch_out_);
}

void SimNetwork::run_until(SimTime t) { sim_.run_until(t); }

bool SimNetwork::run_until_update_everywhere(UpdateId id, SimTime deadline) {
  // Step in slices so we can stop as soon as coverage is complete without
  // draining the (endless) timer queue.
  const SimTime slice = 0.1;
  while (sim_.now() < deadline) {
    if (nodes_holding(id) == size()) return true;
    sim_.run_until(std::min(deadline, sim_.now() + slice));
  }
  return nodes_holding(id) == size();
}

bool SimNetwork::run_until_consistent(SimTime deadline, SimTime check_every) {
  FASTCONS_EXPECTS(check_every > 0.0);
  while (sim_.now() < deadline) {
    if (all_consistent()) return true;
    sim_.run_until(std::min(deadline, sim_.now() + check_every));
  }
  return all_consistent();
}

bool SimNetwork::all_consistent() const {
  if (engines_.size() <= 1) return true;
  if (consistent_revision_ == summary_revision_) return consistent_cache_;
  // Cheap screen: equal applied counts and equal id digests. Different
  // counts or digests prove different summaries; a match is only probable,
  // so it is confirmed by the full comparison below.
  bool result = true;
  for (std::size_t n = 1; n < engines_.size(); ++n) {
    if (node_applied_[n] != node_applied_[0] ||
        node_digest_[n] != node_digest_[0]) {
      result = false;
      break;
    }
  }
  if (result) {
    for (std::size_t n = 1; n < engines_.size(); ++n) {
      if (!(engines_[n].summary() == engines_[0].summary())) {
        result = false;
        break;
      }
    }
  }
  consistent_revision_ = summary_revision_;
  consistent_cache_ = result;
  return result;
}

std::size_t SimNetwork::nodes_holding(UpdateId id) const {
  const auto it = std::lower_bound(
      holding_count_.begin(), holding_count_.end(), id,
      [](const auto& entry, UpdateId key) { return entry.first < key; });
  if (it == holding_count_.end() || it->first != id) return 0;
  return it->second;
}

std::optional<SimTime> SimNetwork::first_delivery(NodeId n, UpdateId id) const {
  FASTCONS_EXPECTS(n < first_seen_.size());
  const auto& seen = first_seen_[n];
  const auto it = std::lower_bound(
      seen.begin(), seen.end(), id,
      [](const auto& entry, UpdateId key) { return entry.first < key; });
  if (it == seen.end() || it->first != id) return std::nullopt;
  return it->second;
}

std::vector<double> SimNetwork::demand_now() const {
  return demand_snapshot(*demand_, sim_.now());
}

TrafficCounters SimNetwork::total_traffic() const {
  TrafficCounters total;
  for (const auto& engine : engines_) total.merge(engine.counters());
  return total;
}

EngineStats SimNetwork::total_stats() const {
  EngineStats total;
  for (const auto& engine : engines_) {
    const EngineStats& s = engine.stats();
    total.sessions_initiated += s.sessions_initiated;
    total.sessions_completed += s.sessions_completed;
    total.sessions_responded += s.sessions_responded;
    total.sessions_expired += s.sessions_expired;
    total.offers_sent += s.offers_sent;
    total.offers_received += s.offers_received;
    total.offers_accepted += s.offers_accepted;
    total.offers_declined += s.offers_declined;
    total.duplicate_updates += s.duplicate_updates;
    total.updates_applied += s.updates_applied;
    total.payloads_truncated += s.payloads_truncated;
    total.pushes_suppressed_unhealthy += s.pushes_suppressed_unhealthy;
  }
  return total;
}

}  // namespace fastcons
