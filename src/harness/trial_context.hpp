/// @file
/// Per-worker pooled state threaded through every trial function.
///
/// The TrialRunner gives each worker thread one TrialContext for the whole
/// scenario run. Trial functions stash whatever expensive-to-build state
/// they want to reuse — a pooled SimNetwork, scratch vectors, a shared
/// topology — under a type key via state<T>(). Because trials are seeded
/// purely from (base_seed, scenario, point, trial) and pooled state resets
/// to fresh-construction behaviour, results stay bit-identical whether a
/// context serves one trial or ten thousand; the reset-equivalence tests
/// pin that for every registered scenario.
#ifndef FASTCONS_HARNESS_TRIAL_CONTEXT_HPP
#define FASTCONS_HARNESS_TRIAL_CONTEXT_HPP

#include <memory>
#include <typeindex>
#include <vector>

namespace fastcons::harness {

/// Type-indexed bag of pooled per-worker state.
///
/// Deliberately not a cache with eviction: a scenario uses a handful of
/// state types and a context lives for one run_scenario call, so a linear
/// scan over a small vector beats any map.
class TrialContext {
 public:
  /// The context's single instance of T, default-constructed on first use.
  /// T must be default-constructible; the instance lives until the context
  /// is destroyed, so trials on the same worker see each other's pooled
  /// buffers (that persistence is the whole point).
  template <typename T>
  T& state() {
    const std::type_index key(typeid(T));
    for (const Slot& slot : slots_) {
      if (slot.type == key) return *static_cast<T*>(slot.ptr.get());
    }
    slots_.push_back(Slot{
        key, std::unique_ptr<void, void (*)(void*)>(
                 new T(), [](void* p) { delete static_cast<T*>(p); })});
    return *static_cast<T*>(slots_.back().ptr.get());
  }

 private:
  struct Slot {
    std::type_index type;
    std::unique_ptr<void, void (*)(void*)> ptr;
  };
  std::vector<Slot> slots_;
};

}  // namespace fastcons::harness

#endif  // FASTCONS_HARNESS_TRIAL_CONTEXT_HPP
