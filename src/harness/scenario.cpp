#include "harness/scenario.hpp"

#include "stats/json.hpp"

namespace fastcons::harness {
namespace {

/// splitmix64 finaliser: bijective, well-mixed; the standard way to spread
/// structured integer inputs into independent seed material.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double param_or(const ParamMap& params, const std::string& key,
                double fallback) {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

std::string tag_or(const TagMap& tags, const std::string& key,
                   const std::string& fallback) {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return fallback;
}

void set_param(ParamMap& params, const std::string& key, double value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = value;
      return;
    }
  }
  params.emplace_back(key, value);
}

std::uint64_t derive_trial_seed(std::uint64_t base_seed,
                                std::string_view scenario, std::size_t point,
                                std::size_t trial) noexcept {
  std::uint64_t h = fnv1a64(scenario);
  h = mix(h ^ base_seed);
  h = mix(h ^ static_cast<std::uint64_t>(point));
  h = mix(h ^ static_cast<std::uint64_t>(trial));
  return h;
}

}  // namespace fastcons::harness
