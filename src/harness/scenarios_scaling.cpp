// Scaling and overhead scenarios: §5's uniform-topology and diameter claims,
// §8's traffic accounting.
#include "common/construction_cost.hpp"
#include "harness/scenarios.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/metrics.hpp"

namespace fastcons::harness {
namespace {

/// Structural metrics of one sample topology, stored as reference values so
/// the results file can relate sessions to the diameter (the §5 claim).
ParamMap structural_reference(const TopologyFactory& topo) {
  Rng probe(123);
  const Graph sample = topo(probe);
  return {{"sample_diameter", static_cast<double>(diameter(sample))},
          {"sample_mean_path", mean_path_length(sample)}};
}

TrialResult uniform_propagation_trial(const SweepPoint& point,
                                      std::uint64_t seed, TrialContext& ctx) {
  return propagation_trial(point, seed,
                           algorithm_config(tag_or(point.tags, "algo", "fast")),
                           uniform_demand(), ctx);
}

/// Appends one sweep point per algorithm for a named topology.
void add_topology_points(std::vector<SweepPoint>& sweep,
                         const std::string& topo_label, const TagMap& topo_tags,
                         const ParamMap& params,
                         const std::vector<std::string>& algos,
                         std::size_t trials_divisor = 1,
                         bool with_reference = false) {
  for (const std::string& algo : algos) {
    SweepPoint point;
    point.label = topo_label + "/" + algo;
    point.tags = topo_tags;
    point.tags.emplace_back("algo", algo);
    point.params = params;
    point.trials_divisor = trials_divisor;
    // One seed stream for the whole scenario: algorithm columns (and the
    // retired benches' per-row comparisons) share random instances.
    point.seed_group = 0;
    if (with_reference) {
      point.reference = structural_reference(topology_from_point(point));
    }
    sweep.push_back(std::move(point));
  }
}

// ------------------------------------------------------------ overhead ----

/// §8 traffic accounting: one write, fixed horizon, exact wire bytes per
/// message class from the codec.
TrialResult overhead_trial(const SweepPoint& point, std::uint64_t seed,
                           TrialContext& ctx) {
  const auto n = static_cast<std::size_t>(param_or(point.params, "n", 50));
  const SimTime horizon = param_or(point.params, "horizon", 10.0);

  Rng rng(seed);
  SimNetwork* net_ptr;
  {
    ConstructionCost::Scope construction;
    Graph g = topology_from_point(point)(rng);
    auto demand = std::make_shared<StaticDemand>(
        make_uniform_random_demand(n, 0.0, 100.0, rng));
    SimConfig cfg;
    cfg.protocol = algorithm_config(tag_or(point.tags, "algo", "fast"));
    cfg.seed = rng.next_u64();
    net_ptr = &ctx.state<SimNetworkPool>().acquire(std::move(g), demand, cfg);
  }
  SimNetwork& net = *net_ptr;
  net.schedule_write(static_cast<NodeId>(rng.index(n)), "k", "v", 0.5);
  net.run_until(horizon);

  const TrafficCounters total = net.total_traffic();
  const double node_units = static_cast<double>(n) * horizon;
  TrialResult out;
  out.value("messages_per_node_unit",
            static_cast<double>(total.total_messages()) / node_units);
  out.value("bytes_per_node_unit",
            static_cast<double>(total.total_bytes()) / node_units);
  record_traffic(out, total);
  return out;
}

}  // namespace

void register_scaling_scenarios(ScenarioRegistry& registry) {
  const auto& algos = three_algorithm_names();
  const std::vector<std::string> weak_fast{"weak", "fast"};

  {
    ScenarioSpec spec;
    spec.name = "uniform-topologies";
    spec.title = "§5 claim: figures 5/6 shapes hold on uniform topologies";
    spec.paper_ref = "§5";
    spec.description =
        "Lines, rings, grids and a balanced tree with uniform random "
        "demand. Expected shape: fast < weak mean sessions on every "
        "topology; fast high-demand well below fast mean.";
    add_topology_points(spec.sweep, "line-16", {{"topo", "line"}}, {{"n", 16}},
                        algos);
    add_topology_points(spec.sweep, "line-32", {{"topo", "line"}}, {{"n", 32}},
                        algos);
    add_topology_points(spec.sweep, "ring-16", {{"topo", "ring"}}, {{"n", 16}},
                        algos);
    add_topology_points(spec.sweep, "ring-32", {{"topo", "ring"}}, {{"n", 32}},
                        algos);
    add_topology_points(spec.sweep, "grid-4x4", {{"topo", "grid"}},
                        {{"w", 4}, {"h", 4}}, algos);
    add_topology_points(spec.sweep, "grid-6x6", {{"topo", "grid"}},
                        {{"w", 6}, {"h", 6}}, algos);
    add_topology_points(spec.sweep, "tree-31", {{"topo", "tree"}}, {{"n", 31}},
                        algos);
    spec.trials = 1500;
    spec.smoke_trials = 3;
    spec.run = uniform_propagation_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "diameter-ba";
    spec.title = "§5 claim (a): sessions stay flat as BA node count grows 16x";
    spec.paper_ref = "§5";
    spec.description =
        "Barabási–Albert graphs n=25..400: node count grows 16x, the "
        "diameter barely moves, and sessions-to-consistency should stay "
        "nearly flat (sessions track the diameter, not the node count).";
    const std::vector<std::pair<std::size_t, std::size_t>> sizes{
        {25, 1}, {50, 1}, {100, 2}, {200, 4}, {400, 10}};
    for (const auto& [n, divisor] : sizes) {
      add_topology_points(spec.sweep, "ba-" + std::to_string(n),
                          {{"topo", "ba"}}, {{"n", static_cast<double>(n)}},
                          weak_fast, divisor, /*with_reference=*/true);
    }
    spec.trials = 1000;
    spec.smoke_trials = 2;
    spec.run = uniform_propagation_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "diameter-grid";
    spec.title = "§5 claim (b): on grids, sessions track the growing diameter";
    spec.paper_ref = "§5";
    spec.description =
        "k x k grids: the diameter grows linearly with k and "
        "sessions-to-consistency should track it — the counterpart that "
        "shows the flatness on BA graphs is a diameter effect.";
    const std::vector<std::pair<std::size_t, std::size_t>> sizes{
        {3, 1}, {5, 1}, {7, 2}, {9, 4}};
    for (const auto& [k, divisor] : sizes) {
      add_topology_points(
          spec.sweep, "grid-" + std::to_string(k) + "x" + std::to_string(k),
          {{"topo", "grid"}},
          {{"w", static_cast<double>(k)}, {"h", static_cast<double>(k)}},
          weak_fast, divisor, /*with_reference=*/true);
    }
    spec.trials = 1000;
    spec.smoke_trials = 2;
    spec.run = uniform_propagation_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "overhead";
    spec.title = "§8 overhead: wire bytes per message class, fast vs weak";
    spec.paper_ref = "§8";
    spec.description =
        "Exact codec byte counts over a fixed horizon on BA-50. Expected "
        "shape: the fast algorithm adds only small id-sized offer/ack "
        "traffic ('few additional bytes'); totals stay within a few percent "
        "of weak consistency.";
    for (const std::string& algo : algos) {
      SweepPoint point;
      point.label = algo;
      point.tags = {{"topo", "ba"}, {"algo", algo}};
      point.params = {{"n", 50}, {"horizon", 10.0}};
      point.seed_group = 0;  // same workload instances for every algorithm
      spec.sweep.push_back(std::move(point));
    }
    spec.trials = 300;
    spec.smoke_trials = 3;
    spec.smoke_overrides = {{"n", 12}, {"horizon", 5.0}};
    spec.run = overhead_trial;
    registry.add(std::move(spec));
  }
}

}  // namespace fastcons::harness
