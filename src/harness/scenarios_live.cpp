// The "live" scenario family: the real-socket counterpart of the fig3/fig5
// simulations. Each trial boots a LocalCluster (one ReplicaServer thread +
// TCP listener per node), seeds one write and clocks wall-time to full
// convergence, then drives sustained write load through run_load and
// records achieved throughput and per-write full-visibility latency.
//
// Unlike every other scenario these results are measurements of this host
// and this run — wall clocks, scheduler noise, TCP — so the family lives in
// live_registry(), outside the digest-pinned builtin registry, and its JSON
// is written without entering DIGESTS.txt.
#include <chrono>
#include <string>

#include "common/error.hpp"
#include "harness/scenarios.hpp"
#include "net/cluster.hpp"

namespace fastcons::harness {
namespace {

/// Live runs keep adverts on: there is no prime-at-t0 step over real
/// sockets, so demand tables fill the way a deployment's would — from the
/// periodic DemandAdvert broadcasts.
ProtocolConfig live_protocol(const std::string& algo) {
  if (algo == "weak") return ProtocolConfig::weak();
  if (algo == "demand-order") return ProtocolConfig::demand_order_only();
  if (algo == "fast") return ProtocolConfig::fast();
  throw ConfigError("unknown algorithm tag '" + algo + "'");
}

TrialResult live_trial(const SweepPoint& point, std::uint64_t seed,
                       TrialContext& /*ctx*/) {
  using Clock = std::chrono::steady_clock;
  Rng rng(seed);
  const Graph topology = topology_from_point(point)(rng);

  ClusterConfig cfg;
  cfg.protocol = live_protocol(tag_or(point.tags, "algo", "fast"));
  cfg.seconds_per_unit = param_or(point.params, "seconds_per_unit", 0.02);
  cfg.seed = rng.next_u64();
  cfg.demands.reserve(topology.size());
  for (std::size_t n = 0; n < topology.size(); ++n) {
    cfg.demands.push_back(rng.uniform(0.0, 100.0));
  }

  const double convergence_timeout =
      param_or(point.params, "convergence_timeout_s", 30.0);
  const double rate = param_or(point.params, "rate", 200.0);
  const double load_seconds = param_or(point.params, "load_seconds", 3.0);
  const NodeId writer = 0;

  LocalCluster cluster(topology, cfg);
  cluster.start();

  // Phase 1: one seed write, wall-clock time until every replica holds it.
  const auto t0 = Clock::now();
  cluster.server(writer).write("seed", "value");
  const bool converged = cluster.wait_for_convergence(convergence_timeout, 1);
  const double convergence_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // Phase 2: sustained write load with per-write visibility tracking.
  const LoadReport load =
      cluster.run_load(writer, rate, load_seconds, convergence_timeout);

  // Wire/engine totals across every replica.
  TrafficCounters traffic;
  NetStats net_totals;
  std::uint64_t updates_applied = 0;
  std::uint64_t duplicates = 0;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    traffic.merge(cluster.server(n).traffic());
    const NetStats net = cluster.server(n).net_stats();
    net_totals.frames_sent += net.frames_sent;
    net_totals.bytes_sent += net.bytes_sent;
    net_totals.frames_dropped += net.frames_dropped;
    net_totals.frames_received += net.frames_received;
    net_totals.bytes_received += net.bytes_received;
    net_totals.connect_attempts += net.connect_attempts;
    net_totals.connect_failures += net.connect_failures;
    net_totals.disconnects += net.disconnects;
    net_totals.codec_errors += net.codec_errors;
    const EngineStats stats = cluster.server(n).stats();
    updates_applied += stats.updates_applied;
    duplicates += stats.duplicate_updates;
  }
  cluster.stop();

  TrialResult out;
  out.value("converged", converged ? 1.0 : 0.0);
  out.value("time_to_convergence_ms", convergence_ms);
  out.value("achieved_writes_per_sec", load.achieved_writes_per_sec);
  out.value("writes_issued", static_cast<double>(load.writes_issued));
  out.value("writes_confirmed", static_cast<double>(load.writes_confirmed));
  out.value("confirmed_fraction",
            load.writes_issued == 0
                ? 0.0
                : static_cast<double>(load.writes_confirmed) /
                      static_cast<double>(load.writes_issued));
  out.value("drain_seconds", load.drain_seconds);
  out.sample("write_visibility_ms",
             load.visibility_latency_ms.sorted_samples());
  record_traffic(out, traffic);
  out.counter("updates_applied", updates_applied);
  out.counter("duplicate_updates", duplicates);
  out.counter("net_frames_sent", net_totals.frames_sent);
  out.counter("net_bytes_sent", net_totals.bytes_sent);
  out.counter("net_frames_received", net_totals.frames_received);
  out.counter("net_bytes_received", net_totals.bytes_received);
  out.counter("net_frames_dropped", net_totals.frames_dropped);
  out.counter("net_connect_attempts", net_totals.connect_attempts);
  out.counter("net_connect_failures", net_totals.connect_failures);
  out.counter("net_disconnects", net_totals.disconnects);
  out.counter("net_codec_errors", net_totals.codec_errors);
  return out;
}

void add_live_points(std::vector<SweepPoint>& sweep, const std::string& label,
                     TagMap topo_tags, ParamMap params) {
  for (const char* algo : {"weak", "fast"}) {
    SweepPoint point;
    point.label = label + "/" + algo;
    point.tags = topo_tags;
    point.tags.emplace_back("algo", algo);
    point.params = params;
    sweep.push_back(std::move(point));
  }
}

}  // namespace

void register_live_scenarios(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.name = "live";
  spec.title = "Live TCP clusters: convergence, throughput and visibility";
  spec.paper_ref = "§5 (live transport)";
  spec.description =
      "The paper's propagation experiment run over real sockets: one "
      "ReplicaServer thread + TCP listener per node, demand tables fed by "
      "adverts on the wire. Per point: wall-clock time for one write to "
      "reach every replica, then a sustained write load with per-write "
      "full-visibility latency (p50/p99) and bytes-on-wire. Expected "
      "shape, as in the simulations: fast converges in fewer session "
      "periods than weak and keeps visibility latency flatter under load. "
      "Results are wall-clock measurements of the host that ran them — "
      "excluded from the determinism digests.";
  add_live_points(spec.sweep, "line-8", {{"topo", "line"}}, {{"n", 8}});
  add_live_points(spec.sweep, "star-8", {{"topo", "star"}}, {{"n", 8}});
  add_live_points(spec.sweep, "ba-12", {{"topo", "ba"}}, {{"n", 12}});
  spec.trials = 3;
  spec.smoke_trials = 1;
  // Smoke: tiny meshes, sub-second load window, but the same phases.
  spec.smoke_overrides = {{"n", 4},
                          {"rate", 60.0},
                          {"load_seconds", 0.5},
                          {"convergence_timeout_s", 20.0}};
  spec.run = live_trial;
  registry.add(std::move(spec));
}

}  // namespace fastcons::harness
