// Shared helpers for the built-in scenario definitions.
#include <charconv>
#include <cmath>

#include "common/construction_cost.hpp"
#include "common/error.hpp"
#include "harness/scenarios.hpp"
#include "stats/counters.hpp"

namespace fastcons::harness {

ProtocolConfig algorithm_config(const std::string& algo) {
  // Static-demand experiments: tables are primed at t=0, so adverts are
  // pure overhead; disabling them matches the paper's static model and
  // keeps the byte counters focused on the replication traffic.
  ProtocolConfig cfg;
  if (algo == "weak") {
    cfg = ProtocolConfig::weak();
  } else if (algo == "demand-order") {
    cfg = ProtocolConfig::demand_order_only();
  } else if (algo == "fast") {
    cfg = ProtocolConfig::fast();
  } else {
    throw ConfigError("unknown algorithm tag '" + algo + "'");
  }
  cfg.advert_period = 0.0;
  return cfg;
}

const std::vector<std::string>& three_algorithm_names() {
  static const std::vector<std::string> names{"weak", "demand-order", "fast"};
  return names;
}

TopologyFactory topology_from_point(const SweepPoint& point) {
  const std::string topo = tag_or(point.tags, "topo", "ba");
  const auto n = static_cast<std::size_t>(param_or(point.params, "n", 50));
  const LatencyRange lat{param_or(point.params, "lat_lo", 0.01),
                         param_or(point.params, "lat_hi", 0.05)};
  if (topo == "line") {
    return [n, lat](Rng& rng) { return make_line(n, lat, rng); };
  }
  if (topo == "ring") {
    return [n, lat](Rng& rng) { return make_ring(n, lat, rng); };
  }
  if (topo == "grid") {
    const auto w = static_cast<std::size_t>(
        param_or(point.params, "w", std::ceil(std::sqrt(static_cast<double>(n)))));
    const auto h = static_cast<std::size_t>(param_or(point.params, "h",
                                                     static_cast<double>(w)));
    return [w, h, lat](Rng& rng) { return make_grid(w, h, lat, rng); };
  }
  if (topo == "tree") {
    return [n, lat](Rng& rng) { return make_binary_tree(n, lat, rng); };
  }
  if (topo == "star") {
    return [n, lat](Rng& rng) { return make_star(n, lat, rng); };
  }
  if (topo == "ba") {
    const auto m = static_cast<std::size_t>(param_or(point.params, "ba_m", 2));
    return [n, m, lat](Rng& rng) { return make_barabasi_albert(n, m, lat, rng); };
  }
  if (topo == "dumbbell") {
    const auto clique =
        static_cast<std::size_t>(param_or(point.params, "clique", 6));
    const auto bridge =
        static_cast<std::size_t>(param_or(point.params, "bridge", 4));
    return [clique, bridge, lat](Rng& rng) {
      return make_dumbbell(clique, bridge, lat, rng);
    };
  }
  throw ConfigError("unknown topology tag '" + topo + "'");
}

DemandFactory uniform_demand(double lo, double hi) {
  return [lo, hi](const Graph& g, Rng& rng) {
    return std::make_shared<StaticDemand>(
        make_uniform_random_demand(g.size(), lo, hi, rng));
  };
}

void record_traffic(TrialResult& out, const TrafficCounters& traffic) {
  out.counter("messages_total", traffic.total_messages());
  out.counter("bytes_total", traffic.total_bytes());
  for (std::size_t i = 0; i < static_cast<std::size_t>(TrafficClass::kCount);
       ++i) {
    const auto cls = static_cast<TrafficClass>(i);
    const std::string name(traffic_class_name(cls));
    out.counter("messages_" + name, traffic.messages(cls));
    out.counter("bytes_" + name, traffic.bytes(cls));
  }
}

std::optional<FaultConfig> fault_config_from_point(const SweepPoint& point) {
  bool any = false;
  for (const auto& [name, value] : point.params) {
    if (name.rfind("fault_", 0) == 0) {
      any = true;
      break;
    }
  }
  if (!any) return std::nullopt;
  FaultConfig f;
  f.loss = param_or(point.params, "fault_loss", 0.0);
  f.duplicate = param_or(point.params, "fault_dup", 0.0);
  f.reorder = param_or(point.params, "fault_reorder", 0.0);
  f.reorder_delay_max =
      param_or(point.params, "fault_reorder_delay", f.reorder_delay_max);
  f.crash_rate = param_or(point.params, "fault_crash_rate", 0.0);
  f.downtime_mean = param_or(point.params, "fault_downtime", f.downtime_mean);
  f.wipe_on_restart = param_or(point.params, "fault_wipe", 1.0) != 0.0;
  const double churn_until = param_or(point.params, "fault_churn_until", -1.0);
  if (churn_until >= 0.0) f.churn_until = churn_until;
  const double groups = param_or(point.params, "fault_partition_groups", 0.0);
  if (groups >= 2.0) {
    PartitionEvent partition;
    partition.groups = static_cast<std::size_t>(groups);
    partition.at = param_or(point.params, "fault_partition_at", 0.0);
    const double heal = param_or(point.params, "fault_heal_at", -1.0);
    if (heal >= 0.0) partition.heal_at = heal;
    f.partitions.push_back(partition);
  }
  return f;
}

void record_fault_stats(TrialResult& out, const PropagationTrial& trial) {
  const FaultStats& s = trial.faults;
  out.counter("trials_consistent", trial.consistent ? 1 : 0);
  out.counter("faults_messages_lost", s.messages_lost);
  out.counter("faults_messages_duplicated", s.messages_duplicated);
  out.counter("faults_messages_delayed", s.messages_delayed);
  out.counter("faults_partition_drops", s.partition_drops);
  out.counter("faults_crash_drops", s.crash_drops);
  out.counter("faults_crashes", s.crashes);
  out.counter("faults_restarts", s.restarts);
  out.counter("faults_wipes", s.wipes);
  out.counter("faults_writes_deferred", s.writes_deferred);
}

void record_propagation(TrialResult& out, const PropagationTrial& trial) {
  out.value("time_to_full", trial.time_to_full);
  out.sample("sessions_all", trial.sessions_all);
  out.sample("sessions_high_demand", trial.sessions_high);
  out.counter("trials_converged", trial.converged ? 1 : 0);
  out.counter("censored_samples", trial.censored_samples);
  record_traffic(out, trial.traffic);
}

namespace {

/// Per-worker cache of the fixed topologies shared_topology_for hands out,
/// keyed by the inputs the build actually reads (topology tag + params) —
/// not the point label, so algorithm variants of one topology (e.g.
/// grid-64x64/weak and /fast) share a single instance per worker.
struct SharedTopologyCache {
  std::vector<std::pair<std::string, std::shared_ptr<const Graph>>> by_key;
};

/// Probe seed for shared-topology construction. A constant: every worker
/// must build byte-identical graphs, and the build must never touch the
/// trial RNG stream.
constexpr std::uint64_t kSharedTopologyProbeSeed = 123;

/// Everything topology_from_point reads, flattened into a cache key.
/// Over-keying (params like "deadline" that the build ignores) only costs
/// a duplicate build; under-keying would silently alias different graphs —
/// hence shortest-round-trip formatting (std::to_chars), which keys every
/// distinct double distinctly, unlike std::to_string's fixed 6 decimals.
std::string topology_cache_key(const SweepPoint& point) {
  std::string key = tag_or(point.tags, "topo", "ba");
  for (const auto& [name, value] : point.params) {
    key += '|';
    key += name;
    key += '=';
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    key.append(buf, ec == std::errc{} ? end : buf);
  }
  return key;
}

}  // namespace

std::shared_ptr<const Graph> shared_topology_for(const SweepPoint& point,
                                                 TrialContext& ctx) {
  SharedTopologyCache& cache = ctx.state<SharedTopologyCache>();
  const std::string key = topology_cache_key(point);
  for (const auto& [existing, graph] : cache.by_key) {
    if (existing == key) return graph;
  }
  ConstructionCost::Scope construction;
  Rng probe(kSharedTopologyProbeSeed);
  auto graph = std::make_shared<const Graph>(topology_from_point(point)(probe));
  cache.by_key.emplace_back(key, graph);
  return graph;
}

TrialResult propagation_trial(const SweepPoint& point, std::uint64_t seed,
                              const ProtocolConfig& protocol,
                              const DemandFactory& demand, TrialContext& ctx) {
  PropagationExperiment exp;
  if (param_or(point.params, "shared_topo", 0.0) != 0.0) {
    exp.shared_topology = shared_topology_for(point, ctx);
  } else {
    exp.topology = topology_from_point(point);
  }
  exp.demand = demand;
  exp.sim.protocol = protocol;
  exp.deadline = param_or(point.params, "deadline", exp.deadline);
  exp.high_demand_fraction =
      param_or(point.params, "high_demand_fraction", exp.high_demand_fraction);
  const std::optional<FaultConfig> faults = fault_config_from_point(point);
  if (faults) exp.sim.faults = *faults;

  Rng rng(seed);
  const PropagationTrial& trial =
      run_propagation_trial(exp, rng, ctx.state<PropagationContext>());
  TrialResult out;
  record_propagation(out, trial);
  // Fault telemetry only for fault points — including the zero-probability
  // control point, whose counters then read all-zero on purpose.
  if (faults) record_fault_stats(out, trial);
  return out;
}

}  // namespace fastcons::harness
