// Seeded fault injection: the Figure 5 experiment re-run on networks that
// drop, duplicate and reorder messages, crash and wipe replicas, and
// partition outright. Weak vs fast anti-entropy on identical seeds
// (seed_group common random numbers), so every point's degradation curve is
// a paired comparison. All fault decisions come from the FaultPlan's own
// derived RNG stream (fault_plan.hpp), which keeps this family — and every
// pre-existing scenario — digest-deterministic at any --jobs count.
#include "harness/scenarios.hpp"

namespace fastcons::harness {
namespace {

TrialResult fault_trial(const SweepPoint& point, std::uint64_t seed,
                        TrialContext& ctx) {
  return propagation_trial(point, seed,
                           algorithm_config(tag_or(point.tags, "algo", "fast")),
                           uniform_demand(), ctx);
}

/// Appends weak/fast points for one fault regime, paired on `seed_group` so
/// both algorithms face the same topologies, demands, timer phases and
/// fault draws trial-for-trial.
void add_fault_points(std::vector<SweepPoint>& sweep, const std::string& label,
                      ParamMap fault_params, std::size_t seed_group) {
  for (const char* algo : {"weak", "fast"}) {
    SweepPoint point;
    point.label = label + "/" + algo;
    point.tags = {{"topo", "ba"}, {"algo", algo}};
    point.params = fault_params;
    point.params.emplace_back("n", 64);
    point.seed_group = seed_group;
    sweep.push_back(std::move(point));
  }
}

}  // namespace

void register_fault_scenarios(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.name = "faults";
  spec.title = "Fault injection: loss, duplication, reordering, churn and "
               "partitions";
  spec.paper_ref = "§5 (extension)";
  spec.description =
      "Propagation of one write over 64-node Barabási–Albert graphs while "
      "the network misbehaves: message loss at 0/10/30%, duplication plus "
      "bounded reordering, crash/restart churn that wipes replica state, "
      "and a two-way partition that heals mid-run. Weak and fast anti-"
      "entropy run on identical random instances per trial (seed_group). "
      "Expected shape: fast's demand-directed sessions keep high-demand "
      "replicas fresh at mild loss and recover faster after churn and "
      "heal; both degrade together as loss approaches 30%. "
      "trials_consistent counts trials whose summaries fully re-agreed by "
      "the deadline — the measure wipes and partitions actually stress.";
  // The zero-probability control: exercises the fault-family code path
  // (fault params present, telemetry recorded) while injecting nothing, so
  // its curves must match a fault-free run of the same points.
  add_fault_points(spec.sweep, "loss-0.0", {{"fault_loss", 0.0}},
                   /*seed_group=*/0);
  add_fault_points(spec.sweep, "loss-0.1", {{"fault_loss", 0.1}},
                   /*seed_group=*/1);
  add_fault_points(spec.sweep, "loss-0.3",
                   {{"fault_loss", 0.3}, {"deadline", 90.0}},
                   /*seed_group=*/2);
  add_fault_points(spec.sweep, "dup-reorder",
                   {{"fault_loss", 0.1},
                    {"fault_dup", 0.1},
                    {"fault_reorder", 0.3},
                    {"fault_reorder_delay", 0.5}},
                   /*seed_group=*/3);
  // Churn: ~5 crashes per unit time across 64 nodes, each wiping the
  // replica; crashes stop at t=8 so catch-up (and the deadline) is fair.
  add_fault_points(spec.sweep, "churn",
                   {{"fault_crash_rate", 0.08},
                    {"fault_downtime", 0.5},
                    {"fault_churn_until", 8.0},
                    {"deadline", 90.0}},
                   /*seed_group=*/4);
  // Partition: the mesh splits into two id-blocks just before/around the
  // write and heals at t=8; convergence time includes the repair.
  add_fault_points(spec.sweep, "partition",
                   {{"fault_partition_groups", 2},
                    {"fault_partition_at", 1.0},
                    {"fault_heal_at", 8.0},
                    {"deadline", 90.0}},
                   /*seed_group=*/5);
  spec.trials = 200;
  spec.smoke_trials = 2;
  // Smoke shrinks the mesh and the horizon; churn/heal times stay inside
  // the shrunken deadline so every fault class still fires.
  spec.smoke_overrides = {{"n", 24}, {"deadline", 30.0}};
  spec.run = fault_trial;
  registry.add(std::move(spec));
}

}  // namespace fastcons::harness
