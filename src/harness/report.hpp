/// @file
/// Result serialisation: versioned JSON files, digests, and the
/// human-readable summary tables the CLI prints.
#ifndef FASTCONS_HARNESS_REPORT_HPP
#define FASTCONS_HARNESS_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "stats/json.hpp"

namespace fastcons::harness {

/// Version stamped into every results file; bump when the layout of the
/// JSON changes incompatibly. docs/experiments.md documents the schema.
inline constexpr int kResultsSchemaVersion = 1;

/// Serialises one scenario result. By default a pure function of the
/// experiment outcome: no timestamps, host names, thread counts or wall
/// times, so equal runs serialise to equal documents (the property the
/// determinism tests and digests pin down). With `include_timing` each
/// point additionally carries {"timing": {wall_ms, construction_ms,
/// event_ms, events_executed, events_per_sec}} — measurements of this
/// particular run, for the perf trajectory; digests are always taken over
/// the pure form.
JsonValue scenario_to_json(const ScenarioResult& result,
                           bool include_timing = false);

/// Serialises a whole run: {"schema_version", "mode",
/// "scenarios": [scenario_to_json...]} — the BENCH_RESULTS.json roll-up.
/// `include_timing` as in scenario_to_json.
JsonValue rollup_to_json(const std::vector<ScenarioResult>& results,
                         bool include_timing = false);

/// Writes `<dir>/<scenario>.json` (pretty, with timing); creates `dir` if
/// needed. Returns the digest (digest_hex of the compact serialisation
/// WITHOUT timing). Throws Error when the file cannot be written.
std::string write_scenario_file(const ScenarioResult& result,
                                const std::string& dir);

/// Writes `<dir>/<scenario>.json` for each scenario plus the roll-up
/// `<dir>/BENCH_RESULTS.json` (both with timing) and `<dir>/DIGESTS.txt` —
/// one "<scenario> <digest>" line per scenario plus a "rollup" line, all
/// digests over the timing-free serialisation so the file is byte-equal
/// across machines, thread counts and code that only changes speed (CI
/// pins it against a golden copy). Creates `dir` if needed. Returns the
/// roll-up digest. Throws Error when a file cannot be written.
std::string write_results(const std::vector<ScenarioResult>& results,
                          const std::string& dir);

/// Prints the per-point summary tables for one scenario.
void print_scenario(const ScenarioResult& result, std::ostream& out);

/// Entry point shared by the legacy bench_* compatibility stubs: runs the
/// named scenarios at full scale (FASTCONS_REPS overrides the trial count,
/// FASTCONS_JOBS the thread count, FASTCONS_CSV_DIR the output directory —
/// kept for continuity with the retired per-binary benches), prints the
/// summaries and writes the JSON files. Returns a process exit code.
int legacy_bench_main(const std::vector<std::string>& scenario_names);

}  // namespace fastcons::harness

#endif  // FASTCONS_HARNESS_REPORT_HPP
