// Thousand-node sweeps: the regime where demand-based propagation
// differentiates from blind gossip, and where per-trial construction used
// to dominate the budget. Affordable now that workers pool their networks
// (reset, not rebuild, between trials), deterministic grids are built once
// per sweep point and shared immutably across trials, and the BA generator
// reuses its working buffers.
#include "harness/scenarios.hpp"

namespace fastcons::harness {
namespace {

TrialResult large_scale_trial(const SweepPoint& point, std::uint64_t seed,
                              TrialContext& ctx) {
  return propagation_trial(point, seed,
                           algorithm_config(tag_or(point.tags, "algo", "fast")),
                           uniform_demand(), ctx);
}

/// Appends weak/fast points for one large topology. `seed_group` pairs the
/// two algorithms on identical random instances per trial index.
void add_large_points(std::vector<SweepPoint>& sweep, const std::string& label,
                      TagMap topo_tags, ParamMap params,
                      std::size_t trials_divisor, std::size_t seed_group) {
  for (const char* algo : {"weak", "fast"}) {
    SweepPoint point;
    point.label = label + "/" + algo;
    point.tags = topo_tags;
    point.tags.emplace_back("algo", algo);
    point.params = params;
    point.trials_divisor = trials_divisor;
    point.seed_group = seed_group;
    sweep.push_back(std::move(point));
  }
}

}  // namespace

void register_large_scale_scenarios(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.name = "large-scale";
  spec.title = "Large-scale sweeps: 1k/4k-node BA and grid propagation";
  spec.paper_ref = "§5 (extension)";
  spec.description =
      "The Figure 5/6 experiment pushed to 1024 and 4096 replicas on "
      "Barabási–Albert graphs (fresh random instance per trial) and square "
      "grids (one deterministic instance shared across trials). Expected "
      "shape: on BA the fast/weak session gap persists and stays nearly "
      "flat in the node count; on grids both algorithms track the growing "
      "diameter but fast keeps high-demand replicas near one session.";
  // BA graphs: a fresh random topology per trial, exactly like fig5/fig6.
  add_large_points(spec.sweep, "ba-1024", {{"topo", "ba"}}, {{"n", 1024}},
                   /*trials_divisor=*/1, /*seed_group=*/0);
  add_large_points(spec.sweep, "ba-4096", {{"topo", "ba"}}, {{"n", 4096}},
                   /*trials_divisor=*/4, /*seed_group=*/1);
  // Grids are deterministic: shared_topo=1 builds one instance per sweep
  // point (probe RNG, not trial RNG) and shares it immutably across all
  // trials — the only per-trial randomness is demand, writer and phase.
  // Deadlines scale with the diameter (2*(k-1) hops for a k x k grid).
  add_large_points(spec.sweep, "grid-32x32", {{"topo", "grid"}},
                   {{"w", 32}, {"h", 32}, {"shared_topo", 1}, {"deadline", 100.0}},
                   /*trials_divisor=*/2, /*seed_group=*/2);
  add_large_points(spec.sweep, "grid-64x64", {{"topo", "grid"}},
                   {{"w", 64}, {"h", 64}, {"shared_topo", 1}, {"deadline", 220.0}},
                   /*trials_divisor=*/20, /*seed_group=*/3);
  spec.trials = 100;
  spec.smoke_trials = 2;
  // Smoke shrinks every point to toy size; shared_topo stays on for the
  // grids so the sharing path gets CI coverage at every thread count.
  spec.smoke_overrides = {{"n", 48}, {"w", 7}, {"h", 7}, {"deadline", 30.0}};
  spec.run = large_scale_trial;
  registry.add(std::move(spec));
}

}  // namespace fastcons::harness
