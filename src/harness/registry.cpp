#include "harness/registry.hpp"

#include "common/error.hpp"
#include "harness/scenarios.hpp"

namespace fastcons::harness {

void ScenarioRegistry::add(ScenarioSpec spec) {
  if (spec.name.empty()) throw ConfigError("scenario name must not be empty");
  if (!spec.run) {
    throw ConfigError("scenario '" + spec.name + "' has no trial function");
  }
  if (spec.sweep.empty()) {
    throw ConfigError("scenario '" + spec.name + "' has an empty sweep");
  }
  if (spec.trials == 0 || spec.smoke_trials == 0) {
    throw ConfigError("scenario '" + spec.name + "' needs trials > 0");
  }
  if (find(spec.name) != nullptr) {
    throw ConfigError("scenario '" + spec.name + "' registered twice");
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(
    const std::string& name) const noexcept {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
  const ScenarioSpec* spec = find(name);
  if (spec != nullptr) return *spec;
  std::string known;
  for (const ScenarioSpec& s : specs_) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw ConfigError("unknown scenario '" + name + "' (known: " + known + ")");
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) out.push_back(spec.name);
  return out;
}

ScenarioRegistry builtin_registry() {
  ScenarioRegistry registry;
  register_paper_scenarios(registry);
  register_scaling_scenarios(registry);
  register_extension_scenarios(registry);
  register_large_scale_scenarios(registry);
  // Registered last on purpose: --all runs scenarios in registration order,
  // so the pre-fault golden digest lines keep their positions.
  register_fault_scenarios(registry);
  // Newest family stays last for the same digest-position reason.
  register_degraded_scenarios(registry);
  return registry;
}

}  // namespace fastcons::harness
