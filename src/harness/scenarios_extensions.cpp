// §6 islands and the repository's extension experiments: design-choice
// ablations, advert staleness, and client-observed freshness.
#include <map>

#include "common/construction_cost.hpp"
#include "experiment/workload.hpp"
#include "harness/scenarios.hpp"
#include "islands/islands.hpp"
#include "sim_runtime/sim_network.hpp"
#include "stats/online_stats.hpp"

namespace fastcons::harness {
namespace {

// ------------------------------------------------------------- islands ----

/// §6's complex demand distribution: two high-demand islands joined by a
/// cold bridge; measures arrival time in the far island with and without
/// the leader-bridge overlay.
TrialResult islands_trial(const SweepPoint& point, std::uint64_t seed,
                          TrialContext& ctx) {
  const auto clique = static_cast<std::size_t>(param_or(point.params, "clique", 6));
  const bool overlay = tag_or(point.tags, "variant", "fast") == "fast+overlay";
  const std::string algo = overlay ? "fast" : tag_or(point.tags, "variant", "fast");
  const SimTime deadline = param_or(point.params, "deadline", 80.0);

  Rng rng(seed);
  std::vector<double> demand;
  SimNetwork* net_ptr;
  {
    ConstructionCost::Scope construction;
    Graph g = topology_from_point(point)(rng);
    // Demands: left island warm, right island hot, bridge cold.
    demand.assign(g.size(), 1.0);
    for (NodeId n = 0; n < clique; ++n) demand[n] = rng.uniform(30.0, 50.0);
    for (NodeId n = clique; n < 2 * clique; ++n) {
      demand[n] = rng.uniform(50.0, 80.0);
    }
    auto model = std::make_shared<StaticDemand>(demand);
    SimConfig cfg;
    cfg.protocol = algorithm_config(algo);
    cfg.seed = rng.next_u64();
    net_ptr = &ctx.state<SimNetworkPool>().acquire(std::move(g), model, cfg);
  }
  SimNetwork& net = *net_ptr;

  const auto islands = detect_islands(net.graph(), demand, 20.0);
  const auto leaders = elect_leaders(islands, demand);
  std::uint64_t bridges_added = 0;
  if (overlay) {
    for (const Bridge& b : compute_bridges(net.graph(), leaders)) {
      net.add_overlay_link(b.a, b.b, b.latency);
      ++bridges_added;
    }
  }
  // Write in the left island; measure arrival in the right island.
  const auto writer = static_cast<NodeId>(rng.index(clique));
  const SimTime at = rng.uniform(0.5, 1.5);
  const UpdateId id = net.schedule_write(writer, "k", "v", at);
  net.run_until_update_everywhere(id, at + deadline);

  const NodeId far_leader_node =
      leaders.size() > 1 ? leaders[1] : static_cast<NodeId>(2 * clique - 1);
  TrialResult out;
  out.value("far_leader_sessions",
            net.first_delivery(far_leader_node, id).value_or(at + deadline) - at);
  OnlineStats island_stat;
  for (NodeId n = clique; n < 2 * clique; ++n) {
    island_stat.add(net.first_delivery(n, id).value_or(at + deadline) - at);
  }
  out.value("far_island_mean_sessions", island_stat.mean());
  double last = 0.0;
  for (NodeId n = 0; n < net.size(); ++n) {
    last = std::max(last, net.first_delivery(n, id).value_or(at + deadline) - at);
  }
  out.value("full_consistency_sessions", last);
  out.counter("overlay_bridges_added", bridges_added);
  return out;
}

// ------------------------------------------------------------ ablation ----

/// Builds the protocol variant a sweep point describes: the paper's fast
/// algorithm with one design choice flipped (fanout, ack mode, push trigger,
/// push rule), or the weak baseline.
ProtocolConfig ablation_config(const SweepPoint& point) {
  ProtocolConfig cfg = algorithm_config(tag_or(point.tags, "algo", "fast"));
  const auto fanout = param_or(point.params, "fast_fanout", 0.0);
  if (fanout > 0.0) cfg.fast_fanout = static_cast<std::size_t>(fanout);
  if (param_or(point.params, "subset_acks", 0.0) != 0.0) {
    cfg.ack_mode = FastAckMode::subset;
  }
  if (param_or(point.params, "push_on_writes_only", 0.0) != 0.0) {
    cfg.push_on_any_gain = false;
  }
  if (param_or(point.params, "unconstrained_push", 0.0) != 0.0) {
    cfg.push_rule = FastPushRule::unconstrained;
  }
  return cfg;
}

TrialResult ablation_trial(const SweepPoint& point, std::uint64_t seed,
                           TrialContext& ctx) {
  return propagation_trial(point, seed, ablation_config(point),
                           uniform_demand(), ctx);
}

// -------------------------------------------------- ablation-staleness ----

/// The §3 stale-table failure: every node's demand is re-drawn at t=0.45,
/// just before the write lands, so tables primed at t=0 rank yesterday's
/// hotspots. Sweeps the advert period; without adverts the high-demand
/// advantage evaporates.
TrialResult staleness_trial(const SweepPoint& point, std::uint64_t seed,
                            TrialContext& ctx) {
  const double advert = param_or(point.params, "advert_period", 0.0);
  ProtocolConfig protocol = ProtocolConfig::fast();
  protocol.advert_period = advert < 0.0 ? 0.0 : advert;

  const DemandFactory demand = [](const Graph& g,
                                  Rng& rng) -> std::shared_ptr<const DemandModel> {
    std::vector<std::map<SimTime, double>> schedules(g.size());
    for (auto& schedule : schedules) {
      schedule[0.0] = rng.uniform(0.0, 100.0);   // what tables get primed with
      schedule[0.45] = rng.uniform(0.0, 100.0);  // the surface that matters
    }
    return std::make_shared<StepDemand>(std::move(schedules));
  };
  return propagation_trial(point, seed, protocol, demand, ctx);
}

// ----------------------------------------------------------- freshness ----

/// The abstract, measured literally: Poisson client reads at demand rate
/// against a write stream; a read is fresh when the serving replica already
/// holds the newest write of the key.
TrialResult freshness_trial(const SweepPoint& point, std::uint64_t seed,
                            TrialContext& ctx) {
  const auto n = static_cast<std::size_t>(param_or(point.params, "n", 40));

  Rng rng(seed);
  Graph g;
  std::shared_ptr<StaticDemand> demand;
  {
    // Only the graph/demand build is construction; run_workload times its
    // own network wiring.
    ConstructionCost::Scope construction;
    g = topology_from_point(point)(rng);
    demand =
        std::make_shared<StaticDemand>(make_zipf_demand(n, 1.0, 60.0, rng));
  }
  SimConfig sim;
  sim.protocol = algorithm_config(tag_or(point.tags, "algo", "fast"));
  sim.seed = rng.next_u64();
  WorkloadConfig workload;
  workload.keys = static_cast<std::size_t>(param_or(point.params, "keys", 4));
  workload.write_interval = param_or(point.params, "write_interval", 2.0);
  workload.duration = param_or(point.params, "duration", 40.0);
  workload.warmup = param_or(point.params, "warmup", 5.0);
  workload.seed = rng.next_u64();
  const WorkloadResult result = run_workload(
      std::move(g), demand, sim, workload, ctx.state<SimNetworkPool>());

  TrialResult out;
  out.value("fresh_fraction", result.fresh_fraction());
  // Trials where every read was fresh have no stale-age observation; they
  // must not contribute a 0.0 (which would deflate the aggregate mean on
  // exactly the metric this scenario compares). The aggregated count then
  // reports how many trials saw any stale read.
  if (result.stale_age.count() > 0) {
    out.value("stale_age_mean", result.stale_age.mean());
  }
  out.counter("reads", result.reads);
  out.counter("fresh_reads", result.fresh_reads);
  out.counter("writes", result.writes);
  return out;
}

}  // namespace

void register_extension_scenarios(ScenarioRegistry& registry) {
  {
    ScenarioSpec spec;
    spec.name = "islands";
    spec.title = "§6 islands: leader bridges across a cold region";
    spec.paper_ref = "§6";
    spec.description =
        "Two high-demand cliques joined by a low-demand bridge. Expected "
        "shape: fast+overlay keeps the far island near ~1 session "
        "regardless of bridge length; plain fast degrades as the cold "
        "bridge lengthens.";
    for (const std::size_t bridge : {4u, 8u, 16u}) {
      for (const char* variant : {"weak", "fast", "fast+overlay"}) {
        SweepPoint point;
        point.label = "bridge-" + std::to_string(bridge) + "/" + variant;
        point.tags = {{"topo", "dumbbell"}, {"variant", variant}};
        point.params = {{"clique", 6},
                        {"bridge", static_cast<double>(bridge)},
                        {"lat_lo", 0.01},
                        {"lat_hi", 0.03}};
        point.seed_group = 0;  // variants compare on identical instances
        spec.sweep.push_back(std::move(point));
      }
    }
    spec.trials = 500;
    spec.smoke_trials = 3;
    spec.run = islands_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "ablation";
    spec.title = "Design-choice ablations on the Figure 5 workload";
    spec.paper_ref = "DESIGN §5 (extension)";
    spec.description =
        "Flips one fast-path design choice at a time on BA-50 with uniform "
        "demand: push fanout, ack semantics, push trigger, and the demand-"
        "gradient push rule vs unconstrained flooding, against the paper "
        "configuration and the weak baseline.";
    const std::vector<std::pair<std::string, ParamMap>> variants{
        {"fast-paper", {}},
        {"fanout-2", {{"fast_fanout", 2}}},
        {"fanout-3", {{"fast_fanout", 3}}},
        {"subset-acks", {{"subset_acks", 1}}},
        {"push-on-writes-only", {{"push_on_writes_only", 1}}},
        {"unconstrained-push", {{"unconstrained_push", 1}}},
    };
    for (const auto& [label, extra] : variants) {
      SweepPoint point;
      point.label = label;
      point.tags = {{"topo", "ba"}, {"algo", "fast"}};
      point.params = {{"n", 50}};
      for (const auto& [k, v] : extra) point.params.emplace_back(k, v);
      point.seed_group = 0;  // every variant sees the same instances
      spec.sweep.push_back(std::move(point));
    }
    SweepPoint weak;
    weak.label = "weak-baseline";
    weak.tags = {{"topo", "ba"}, {"algo", "weak"}};
    weak.params = {{"n", 50}};
    weak.seed_group = 0;
    spec.sweep.push_back(std::move(weak));
    spec.trials = 1200;
    spec.smoke_trials = 3;
    spec.smoke_overrides = {{"n", 12}};
    spec.run = ablation_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "ablation-staleness";
    spec.title = "Advert period vs table staleness (the §3 failure)";
    spec.paper_ref = "§3-§4 (extension)";
    spec.description =
        "Every node's demand is re-drawn just before the write lands, so "
        "demand tables primed at t=0 are stale. Expected shape: with no "
        "adverts the high-demand advantage degrades toward the population "
        "mean; faster adverts restore it at the cost of advert traffic.";
    for (const double advert : {-1.0, 1.0, 0.25, 0.05}) {
      SweepPoint point;
      point.label = advert < 0.0 ? "advert-never"
                                 : "advert-" + std::to_string(advert).substr(0, 4);
      point.tags = {{"topo", "ba"}};
      point.params = {{"n", 50}, {"advert_period", advert}};
      point.seed_group = 0;  // same shifted-demand instances per period
      spec.sweep.push_back(std::move(point));
    }
    spec.trials = 300;
    spec.smoke_trials = 3;
    spec.smoke_overrides = {{"n", 12}};
    spec.run = staleness_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "freshness";
    spec.title = "Client freshness: fresh-read fraction under a write stream";
    spec.paper_ref = "Abstract (extension)";
    spec.description =
        "Poisson reads at each replica at its demand rate while writes flow "
        "through BA-40 with Zipf demand. Expected shape: fast keeps the "
        "fresh-read fraction highest at every write rate and leaves younger "
        "stale reads; the gap widens as writes become more frequent.";
    for (const double interval : {4.0, 2.0, 1.0}) {
      for (const std::string& algo : three_algorithm_names()) {
        SweepPoint point;
        point.label = "write-interval-" +
                      std::to_string(interval).substr(0, 1) + "/" + algo;
        point.tags = {{"topo", "ba"}, {"algo", algo}};
        point.params = {{"n", 40}, {"write_interval", interval}};
        point.seed_group = 0;  // algorithms read the same client history
        spec.sweep.push_back(std::move(point));
      }
    }
    spec.trials = 20;
    spec.smoke_trials = 2;
    spec.smoke_overrides = {{"n", 12}, {"duration", 15.0}, {"warmup", 3.0}};
    spec.run = freshness_trial;
    registry.add(std::move(spec));
  }
}

}  // namespace fastcons::harness
