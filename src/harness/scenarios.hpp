/// @file
/// Registration hooks for the built-in scenario groups, plus the few helpers
/// the scenario definition files share. Internal to the harness; CLI and
/// tests go through builtin_registry().
#ifndef FASTCONS_HARNESS_SCENARIOS_HPP
#define FASTCONS_HARNESS_SCENARIOS_HPP

#include <memory>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "demand/demand_model.hpp"
#include "experiment/propagation.hpp"
#include "harness/registry.hpp"
#include "topology/generators.hpp"

namespace fastcons::harness {

/// §2 walkthrough and Figures 3-6: "sec2", "fig3", "fig4", "fig5", "fig6".
void register_paper_scenarios(ScenarioRegistry& registry);

/// §5/§8 scaling and overhead claims: "uniform-topologies", "diameter-ba",
/// "diameter-grid", "overhead".
void register_scaling_scenarios(ScenarioRegistry& registry);

/// §6 islands and the repository's extensions: "islands", "ablation",
/// "ablation-staleness", "freshness".
void register_extension_scenarios(ScenarioRegistry& registry);

/// Thousand-node sweeps ("large-scale"): BA and grid topologies at 1k/4k
/// replicas — the regime demand-based propagation is meant for, affordable
/// now that trial construction is pooled and deterministic topologies are
/// shared across trials.
void register_large_scale_scenarios(ScenarioRegistry& registry);

/// Seeded fault injection ("faults"): lossy/duplicating/reordering links,
/// crash/restart churn with state wipe, and partition/heal events, weak vs
/// fast on identical seeds (seed_group common random numbers). Digest-
/// stable: all fault decisions come from the FaultPlan's own RNG stream.
void register_fault_scenarios(ScenarioRegistry& registry);

/// Graceful degradation ("degraded"): health-aware vs health-blind fast
/// anti-entropy under dead-peer and flapping regimes on seed_group common
/// random numbers. Digest-stable: health derivation is draw-free.
void register_degraded_scenarios(ScenarioRegistry& registry);

/// Real-socket scenarios ("live"): LocalCluster meshes over TCP, weak vs
/// fast, measuring wall-clock convergence, sustained write throughput and
/// write-visibility latency. Registered only in live_registry(): results
/// are wall-clock measurements, not deterministic functions of the seed.
void register_live_scenarios(ScenarioRegistry& registry);

/// Durable crash-recovery benchmark ("recovery"): a demand-asymmetric line
/// cluster whose middle node is killed and restarted in recover mode,
/// measuring local WAL/checkpoint replay time against log size and
/// demand-ordered catch-up time against the downtime write rate. Registered
/// only in live_registry(): wall-clock and disk measurements.
void register_recovery_scenarios(ScenarioRegistry& registry);

/// Maps an "algo" tag ("weak", "demand-order", "fast") to the protocol
/// preset with adverts disabled — the static-demand experiment setup every
/// figure uses. Throws ConfigError on unknown names.
ProtocolConfig algorithm_config(const std::string& algo);

/// The three algorithm names in figure order: weak, demand-order, fast.
const std::vector<std::string>& three_algorithm_names();

/// Builds a topology factory from a point's tags/params. Understands
/// tag "topo" in {line, ring, grid, tree, ba, dumbbell, star} with params
/// "n" (or "w"/"h" for grids, "clique"/"bridge" for dumbbells).
TopologyFactory topology_from_point(const SweepPoint& point);

/// Uniform [lo, hi) per-node demand factory (the paper's §5 setup).
DemandFactory uniform_demand(double lo = 0.0, double hi = 100.0);

/// The topology a sweep point with `shared_topo != 0` shares across every
/// trial: built once per (context, point label) from the point's topology
/// tags with a fixed probe RNG — never the trial RNG — so trials consume
/// identical draw sequences whether or not sharing is on, and every worker
/// builds the same graph. Only meaningful for points whose topology is
/// supposed to be one fixed instance (grids, stars, rings); random-
/// per-trial topologies (the fig5/fig6 BA sweeps) must not set it.
std::shared_ptr<const Graph> shared_topology_for(const SweepPoint& point,
                                                 TrialContext& ctx);

/// Runs one propagation repetition for `point` (reading "algo", topology
/// tags, "deadline" and "shared_topo") and records the standard propagation
/// metrics into a TrialResult: sessions_all/sessions_high samples,
/// time_to_full value, convergence and traffic counters. Pools the network
/// and scratch buffers in `ctx`.
TrialResult propagation_trial(const SweepPoint& point, std::uint64_t seed,
                              const ProtocolConfig& protocol,
                              const DemandFactory& demand, TrialContext& ctx);

/// Appends `trial`'s observations to `out` under the standard metric names.
void record_propagation(TrialResult& out, const PropagationTrial& trial);

/// The fault configuration a sweep point asks for, or nullopt when the
/// point has no `fault_*` params at all — pre-existing scenarios take the
/// nullopt path and their trial behaviour (and digests) cannot change.
/// Params: fault_loss, fault_dup, fault_reorder, fault_reorder_delay,
/// fault_crash_rate, fault_downtime, fault_wipe (0/1), fault_churn_until
/// (< 0 = unbounded), fault_partition_groups (>= 2 enables a partition),
/// fault_partition_at, fault_heal_at (< 0 = never heals).
std::optional<FaultConfig> fault_config_from_point(const SweepPoint& point);

/// Appends `trial`'s fault telemetry (faults_* counters, trials_consistent)
/// to `out`. Called only for points with fault params so the standard
/// scenarios' result schema stays untouched.
void record_fault_stats(TrialResult& out, const PropagationTrial& trial);

/// Appends `traffic` to `out` as messages_total/bytes_total plus one
/// messages_<class>/bytes_<class> counter pair per TrafficClass — the one
/// spelling of the traffic counter names every scenario shares.
void record_traffic(TrialResult& out, const TrafficCounters& traffic);

}  // namespace fastcons::harness

#endif  // FASTCONS_HARNESS_SCENARIOS_HPP
