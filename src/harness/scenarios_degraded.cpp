// Degraded operation: health-aware vs health-blind propagation while peers
// die or flap. The peer-health layer (src/health) marks silent neighbours
// suspect/down from advert+message recency, decays their demand out of
// partner selection and the fast-push gradient, and re-promotes them on
// first contact after recovery. Each regime pairs an aware and a blind
// point on seed_group common random numbers: identical topologies, demands,
// writers, timer phases and crash schedules trial-for-trial, so any curve
// difference is the health policy itself. Health derivation is draw-free,
// which keeps both variants digest-deterministic at any --jobs count.
#include "harness/scenarios.hpp"

namespace fastcons::harness {
namespace {

TrialResult degraded_trial(const SweepPoint& point, std::uint64_t seed,
                           TrialContext& ctx) {
  // Fast algorithm with adverts RE-ENABLED: the figure scenarios run
  // static-demand with advert_period = 0 (algorithm_config), but adverts
  // are the health layer's recency signal and its recovery channel, so
  // both variants here pay for them — the comparison isolates the policy,
  // not the advert traffic.
  ProtocolConfig protocol = algorithm_config("fast");
  protocol.advert_period = param_or(point.params, "advert_period", 0.25);
  if (tag_or(point.tags, "health", "blind") == "aware") {
    protocol.health.enabled = true;
    protocol.health.suspect_after =
        param_or(point.params, "health_suspect_after", 1.5);
    protocol.health.down_after =
        param_or(point.params, "health_down_after", 4.0);
    protocol.health.suspect_demand_factor =
        param_or(point.params, "health_suspect_factor", 0.25);
  }

  PropagationExperiment exp;
  exp.topology = topology_from_point(point);
  exp.demand = uniform_demand();
  exp.sim.protocol = protocol;
  exp.deadline = param_or(point.params, "deadline", exp.deadline);
  const std::optional<FaultConfig> faults = fault_config_from_point(point);
  if (faults) exp.sim.faults = *faults;

  Rng rng(seed);
  const PropagationTrial& trial =
      run_propagation_trial(exp, rng, ctx.state<PropagationContext>());
  TrialResult out;
  record_propagation(out, trial);
  if (faults) record_fault_stats(out, trial);
  out.counter("pushes_suppressed_unhealthy", trial.pushes_suppressed_unhealthy);
  return out;
}

/// Appends blind/aware points for one degradation regime, paired on
/// `seed_group` (the faults family's common-random-numbers pattern).
void add_degraded_points(std::vector<SweepPoint>& sweep,
                         const std::string& label, ParamMap fault_params,
                         std::size_t seed_group) {
  for (const char* health : {"blind", "aware"}) {
    SweepPoint point;
    point.label = label + "/" + health;
    point.tags = {{"topo", "ba"}, {"health", health}};
    point.params = fault_params;
    point.params.emplace_back("n", 48);
    point.seed_group = seed_group;
    sweep.push_back(std::move(point));
  }
}

}  // namespace

void register_degraded_scenarios(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.name = "degraded";
  spec.title = "Graceful degradation: health-aware vs health-blind under "
               "dead and flapping peers";
  spec.paper_ref = "§5 (extension)";
  spec.description =
      "Propagation of one write over 48-node Barabási–Albert graphs while "
      "replicas fail, fast anti-entropy with adverts on, with the peer-"
      "health layer off (blind) vs on (aware) per regime on identical "
      "random instances (seed_group). dead-peers: early crashes whose "
      "downtime outlives the horizon — aware stops burning sessions and "
      "pushes on corpses, so live replicas see the change in fewer "
      "sessions (lower sessions_all/time_to_full among the living; the "
      "dead censor identically in both). flapping: rapid short crashes "
      "without state wipe — the stress test for re-promotion; aware must "
      "not lag behind blind once a flapping peer returns. "
      "pushes_suppressed_unhealthy counts gradient pushes the decayed "
      "demand vetoed; it is zero for every blind point by construction.";
  // Dead peers: crashes only before t=2, each lasting ~40 units — longer
  // than any deadline here, so a crashed replica is simply gone. The aware
  // variant marks them down within health_down_after and routes around.
  add_degraded_points(spec.sweep, "dead-peers",
                      {{"fault_crash_rate", 0.15},
                       {"fault_downtime", 40.0},
                       {"fault_churn_until", 2.0},
                       {"deadline", 30.0}},
                      /*seed_group=*/0);
  // Flapping: frequent sub-period outages with state retained (a flaky
  // link, not a crash). Suspicion decays demand but must recover on the
  // first advert after each return; down_after is rarely reached.
  add_degraded_points(spec.sweep, "flapping",
                      {{"fault_crash_rate", 0.5},
                       {"fault_downtime", 0.4},
                       {"fault_wipe", 0.0},
                       {"fault_churn_until", 10.0},
                       {"deadline", 30.0}},
                      /*seed_group=*/1);
  spec.trials = 200;
  spec.smoke_trials = 2;
  spec.smoke_overrides = {{"n", 24}, {"deadline", 20.0}};
  spec.run = degraded_trial;
  registry.add(std::move(spec));
}

}  // namespace fastcons::harness
