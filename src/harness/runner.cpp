#include "harness/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "common/construction_cost.hpp"
#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace fastcons::harness {
namespace {

/// One schedulable unit: a (sweep point, trial) pair.
struct Task {
  std::size_t point_index = 0;  // into the executed-points vector
  std::size_t seed_index = 0;   // seed_group or spec.sweep index (feeds the seed)
  std::size_t trial = 0;
};

/// Everything one task writes: the trial's result plus the measurements
/// taken around it. One cache-line-aligned record per task, so concurrent
/// workers finishing adjacent tasks never store into the same line — the
/// previous four parallel arrays (results / errors / wall / events)
/// interleaved adjacent 8-byte writes from different workers.
///
/// Ownership is lock-free by design, so there is deliberately no mutex
/// (and no GUARDED_BY) here: exactly one worker claims task i via the
/// fetch_add on `next` and becomes the sole writer of slots[i]; the main
/// thread reads the slots only after join() of every worker, which
/// synchronizes-with all their writes. The CI tsan job runs the harness
/// at --jobs 4 to keep this claim honest.
struct alignas(64) TaskSlot {
  TrialResult result;
  std::exception_ptr error;
  double wall_ms = 0.0;
  double construction_ms = 0.0;
  std::uint64_t events = 0;
};

std::size_t effective_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Appends `name`->`value` into the named-accumulator vector, preserving
/// first-appearance order. Linear scan: metric counts are small (< 30).
template <typename Accumulator, typename Value, typename Fold>
void fold_named(std::vector<std::pair<std::string, Accumulator>>& into,
                const std::string& name, const Value& value, Fold fold) {
  for (auto& [existing, acc] : into) {
    if (existing == name) {
      fold(acc, value);
      return;
    }
  }
  into.emplace_back(name, Accumulator{});
  fold(into.back().second, value);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunOptions& options) {
  ScenarioResult result;
  result.name = spec.name;
  result.title = spec.title;
  result.paper_ref = spec.paper_ref;
  result.description = spec.description;
  result.smoke = options.smoke;
  result.base_seed = options.base_seed;

  // Materialise the executed points: smoke overrides, sweep filter, trial
  // counts. Indices into spec.sweep are kept so seeds (and therefore
  // numbers) do not depend on which subset of the sweep runs.
  const std::size_t base_trials =
      options.trials.value_or(options.smoke ? spec.smoke_trials : spec.trials);
  if (base_trials == 0) throw ConfigError("trial count must be > 0");

  std::vector<Task> tasks;
  for (std::size_t i = 0; i < spec.sweep.size(); ++i) {
    const SweepPoint& spec_point = spec.sweep[i];
    if (!options.sweep_filter.empty() &&
        spec_point.label.find(options.sweep_filter) == std::string::npos) {
      continue;
    }
    PointResult point_result;
    point_result.point = spec_point;
    point_result.index = i;
    if (options.smoke) {
      for (const auto& [key, value] : spec.smoke_overrides) {
        set_param(point_result.point.params, key, value);
      }
    }
    const std::size_t divisor = std::max<std::size_t>(1, spec_point.trials_divisor);
    point_result.trials = std::max<std::size_t>(1, base_trials / divisor);
    const std::size_t seed_index = spec_point.seed_group.value_or(i);
    for (std::size_t trial = 0; trial < point_result.trials; ++trial) {
      tasks.push_back(Task{result.points.size(), seed_index, trial});
    }
    result.points.push_back(std::move(point_result));
  }
  if (result.points.empty()) {
    throw ConfigError("scenario '" + spec.name + "': no sweep point matches '" +
                      options.sweep_filter + "'");
  }

  // Fan the trials out. Workers only write their own TaskSlot, so no
  // locking is needed; aggregation below runs single-threaded in task
  // order, which is what makes the output independent of scheduling.
  // Each worker owns one TrialContext for its lifetime: pooled networks
  // and scratch buffers survive across every trial the worker executes,
  // which is where the per-trial construction tax goes to die. Contexts
  // never affect results (reset-equivalence is tested per scenario), so
  // the output stays bit-identical for any --jobs value.
  std::vector<TaskSlot> slots(tasks.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    TrialContext context;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      const Task& task = tasks[i];
      TaskSlot& slot = slots[i];
      const std::uint64_t seed = derive_trial_seed(
          options.base_seed, spec.name, task.seed_index, task.trial);
      const std::uint64_t events_before = Simulator::thread_events_executed();
      const std::uint64_t construction_before = ConstructionCost::thread_ns();
      const auto started = std::chrono::steady_clock::now();
      try {
        slot.result =
            spec.run(result.points[task.point_index].point, seed, context);
      } catch (...) {
        slot.error = std::current_exception();
      }
      const auto finished = std::chrono::steady_clock::now();
      slot.wall_ms =
          std::chrono::duration<double, std::milli>(finished - started).count();
      slot.construction_ms =
          static_cast<double>(ConstructionCost::thread_ns() -
                              construction_before) /
          1e6;
      slot.events = Simulator::thread_events_executed() - events_before;
    }
  };

  const std::size_t jobs = std::min(effective_jobs(options.jobs), tasks.size());
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (const TaskSlot& slot : slots) {
    if (slot.error) std::rethrow_exception(slot.error);
  }

  // Deterministic aggregation: tasks are ordered by (point, trial).
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    PointResult& into = result.points[tasks[i].point_index];
    const TrialResult& trial = slots[i].result;
    into.wall_ms += slots[i].wall_ms;
    into.construction_ms += slots[i].construction_ms;
    into.events_executed += slots[i].events;
    for (const auto& [name, value] : trial.values) {
      fold_named(into.values, name, value,
                 [](OnlineStats& acc, double v) { acc.add(v); });
    }
    for (const auto& [name, samples] : trial.samples) {
      fold_named(into.samples, name, samples,
                 [](EmpiricalCdf& acc, const std::vector<double>& v) {
                   acc.add_all(v);
                 });
    }
    for (const auto& [name, value] : trial.counters) {
      fold_named(into.counters, name, value,
                 [](std::uint64_t& acc, std::uint64_t v) { acc += v; });
    }
  }
  return result;
}

}  // namespace fastcons::harness
