/// @file
/// The scenario registry: every experiment this repository can run, by name.
#ifndef FASTCONS_HARNESS_REGISTRY_HPP
#define FASTCONS_HARNESS_REGISTRY_HPP

#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace fastcons::harness {

/// Named collection of ScenarioSpecs with stable iteration order
/// (registration order, which for the built-ins follows the paper).
class ScenarioRegistry {
 public:
  /// Registers a scenario. Throws ConfigError on duplicate or empty names,
  /// empty sweeps, or a missing trial function.
  void add(ScenarioSpec spec);

  /// Looks a scenario up by exact name; nullptr when absent.
  const ScenarioSpec* find(const std::string& name) const noexcept;

  /// Like find(), but throws ConfigError naming the known scenarios when
  /// `name` is not registered — the CLI's error path.
  const ScenarioSpec& get(const std::string& name) const;

  /// All scenarios in registration order.
  const std::vector<ScenarioSpec>& all() const noexcept { return specs_; }

  /// Registered names in registration order.
  std::vector<std::string> names() const;

 private:
  std::vector<ScenarioSpec> specs_;
};

/// The built-in registry: the 13 experiment scenarios ported from the
/// historical bench_* binaries (see docs/paper-map.md for the mapping) plus
/// the "large-scale" 1k/4k-node sweeps. Built fresh on each call; cheap
/// enough for CLI startup.
ScenarioRegistry builtin_registry();

/// The live-transport registry: scenarios that run LocalCluster over real
/// TCP sockets and measure wall-clock behaviour. Kept OUT of
/// builtin_registry() on purpose — their results depend on the host and
/// the clock, so they are excluded from the determinism digests and the
/// reset-equivalence sweeps that pin every builtin scenario.
ScenarioRegistry live_registry();

}  // namespace fastcons::harness

#endif  // FASTCONS_HARNESS_REGISTRY_HPP
