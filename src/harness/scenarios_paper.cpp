// The paper-core scenarios: the §2 walkthrough and Figures 3-6.
#include <deque>
#include <map>
#include <optional>

#include "common/construction_cost.hpp"
#include "core/engine.hpp"
#include "experiment/metrics.hpp"
#include "harness/scenarios.hpp"
#include "sim_runtime/sim_network.hpp"

namespace fastcons::harness {
namespace {

// ---------------------------------------------------------------- sec2 ----

/// Pooled per-worker state for sec2: the three walkthrough engines and B's
/// demand table are constructed once and reset — never rebuilt — for every
/// later trial on the worker.
struct Sec2Context {
  std::optional<DemandTable> b_table;
  std::optional<ReplicaEngine> e, b, d;
};

/// §2 running example (A..E with demands 4 6 3 8 7): B's demand-ordered
/// session cycle and the 18-step message walkthrough (session E<->B, then
/// the fast update B->D). Fully deterministic; one trial.
TrialResult sec2_trial(const SweepPoint&, std::uint64_t, TrialContext& ctx) {
  const std::vector<double> demands{4, 6, 3, 8, 7};  // A..E

  TrialResult out;

  Sec2Context& pooled = ctx.state<Sec2Context>();

  // B's demand-ordered cycle: paper best case B-D, B-E, B-A, B-C.
  const std::vector<NodeId> b_neighbours{0, 2, 3, 4};
  if (pooled.b_table.has_value()) {
    pooled.b_table->reset(b_neighbours, 0.0);
  } else {
    pooled.b_table.emplace(b_neighbours);
  }
  DemandTable& b_table = *pooled.b_table;
  for (const NodeId peer : {0u, 2u, 3u, 4u}) {
    b_table.update(peer, demands[peer], 0.0);
  }
  const auto order = b_table.by_demand_desc(0.0);
  const bool order_ok = order == std::vector<NodeId>{3, 4, 0, 2};
  out.counter("order_matches_paper", order_ok ? 1 : 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    out.value("order_pick_" + std::to_string(i + 1),
              static_cast<double>(order[i]));
  }

  // Steps 1-18: engines for E, B, D; E writes, sessions with B; B's gain
  // fast-updates D.
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.advert_period = 0.0;
  const auto engine_for = [&cfg](std::optional<ReplicaEngine>& slot,
                                 NodeId self, std::vector<NodeId> neighbours,
                                 std::uint64_t seed) -> ReplicaEngine& {
    if (slot.has_value()) {
      slot->reset(self, neighbours, cfg, seed);
    } else {
      slot.emplace(self, std::move(neighbours), cfg, seed);
    }
    return *slot;
  };
  ReplicaEngine& e = engine_for(pooled.e, 4, {1}, 1);
  ReplicaEngine& b = engine_for(pooled.b, 1, {0, 2, 3, 4}, 2);
  ReplicaEngine& d = engine_for(pooled.d, 3, {1}, 3);
  e.set_own_demand(demands[4]);
  b.set_own_demand(demands[1]);
  d.set_own_demand(demands[3]);
  e.prime_neighbour_demand(1, demands[1], 0.0);
  for (const NodeId peer : {0u, 2u, 3u, 4u}) {
    b.prime_neighbour_demand(peer, demands[peer], 0.0);
  }
  d.prime_neighbour_demand(1, demands[1], 0.0);

  std::map<NodeId, ReplicaEngine*> engines{{4, &e}, {1, &b}, {3, &d}};
  std::deque<std::pair<NodeId, Outbound>> queue;
  const auto enqueue = [&](NodeId from, std::vector<Outbound> outs) {
    for (Outbound& o : outs) queue.push_back({from, std::move(o)});
  };

  std::uint64_t steps = 1;  // the client write itself
  enqueue(4, e.local_write("news", "update-from-E", 0.0));
  enqueue(4, e.on_session_timer(0.0));  // E selects B (most demand)
  while (!queue.empty()) {
    auto [from, o] = std::move(queue.front());
    queue.pop_front();
    ++steps;
    const auto it = engines.find(o.to);
    if (it == engines.end()) continue;  // A/C not instantiated in this demo
    enqueue(o.to, it->second->handle(from, o.msg, 0.0));
  }
  out.counter("walkthrough_messages", steps);

  std::uint64_t holding = 0;
  for (const auto& [id, engine] : engines) {
    if (engine->summary().contains(UpdateId{4, 1})) ++holding;
  }
  out.counter("replicas_holding_update", holding);
  out.counter("d_reached_by_fast_push",
              d.summary().contains(UpdateId{4, 1}) ? 1 : 0);
  return out;
}

// ---------------------------------------------------------------- fig3 ----

/// The §2 five-replica star (B is the hub and holds the change).
Graph fig3_star() {
  Graph g(5);
  g.add_edge(1, 0, 0.02);
  g.add_edge(1, 2, 0.02);
  g.add_edge(1, 3, 0.02);
  g.add_edge(1, 4, 0.02);
  return g;
}

const std::vector<double>& fig3_demands() {
  static const std::vector<double> demands{4, 6, 3, 8, 7};
  return demands;
}

/// Requests/unit-time served consistently after sessions 1..4 when B visits
/// neighbours in `order` (the paper's analytic worst/optimal curves).
std::vector<double> fig3_series_for_order(const std::vector<NodeId>& order) {
  std::vector<std::optional<SimTime>> delivery(5);
  delivery[1] = 0.0;  // B starts with the change
  for (std::size_t k = 0; k < order.size(); ++k) {
    delivery[order[k]] = static_cast<double>(k + 1);
  }
  return consistent_rate_series(delivery, fig3_demands(), 4, 1.0);
}

/// Pooled per-worker state for fig3: the (deterministic) star and its
/// demand model are built once and shared immutably across every trial the
/// worker executes; the network is reset, not rebuilt, per trial.
struct Fig3Context {
  std::shared_ptr<const Graph> star;
  std::shared_ptr<const DemandModel> demands;
  SimNetworkPool pool;
};

/// One measured fast-consistency run: B writes at t=0; sample the
/// consistent-service rate at the four session boundaries.
TrialResult fig3_trial(const SweepPoint&, std::uint64_t seed,
                       TrialContext& ctx) {
  Fig3Context& fig3 = ctx.state<Fig3Context>();
  SimNetwork* net_ptr;
  {
    ConstructionCost::Scope construction;
    if (fig3.star == nullptr) {
      fig3.star = std::make_shared<const Graph>(fig3_star());
      fig3.demands = std::make_shared<StaticDemand>(fig3_demands());
    }
    SimConfig cfg;
    cfg.protocol = ProtocolConfig::fast();
    cfg.protocol.advert_period = 0.0;
    cfg.timing = SimConfig::Timing::periodic;
    cfg.seed = seed;
    net_ptr = &fig3.pool.acquire(fig3.star, fig3.demands, cfg);
  }
  SimNetwork& net = *net_ptr;
  const UpdateId id = net.schedule_write(1, "k", "v", 0.0);
  net.run_until_update_everywhere(id, 10.0);
  std::vector<std::optional<SimTime>> delivery(5);
  for (NodeId n = 0; n < 5; ++n) delivery[n] = net.first_delivery(n, id);
  const auto series = consistent_rate_series(delivery, fig3_demands(), 4, 1.0);

  TrialResult out;
  for (std::size_t k = 0; k < series.size(); ++k) {
    out.value("rate_session_" + std::to_string(k + 1), series[k]);
  }
  return out;
}

// ---------------------------------------------------------------- fig4 ----

/// Drives B's engine through three session timers with the Fig. 4 demand
/// shift (A: 2->0, C: 0->9 after the first session; D constant at 13) and
/// records the chosen partner sequence.
TrialResult fig4_trial(const SweepPoint& point, std::uint64_t, TrialContext&) {
  const std::string variant = tag_or(point.tags, "selection", "dynamic");
  ProtocolConfig cfg = ProtocolConfig::fast();
  cfg.selection = variant == "dynamic" ? PartnerSelection::demand_dynamic
                                       : PartnerSelection::demand_static;
  cfg.advert_period = 0.0;  // adverts injected manually below
  ReplicaEngine b(1, {0 /*A*/, 2 /*C*/, 3 /*D*/}, cfg, 1);
  b.set_own_demand(6.0);
  // Initial adverts: A=2, C=0, D=13 (Fig. 4, t=1).
  b.handle(0, Message{DemandAdvert{2.0}}, 0.5);
  b.handle(2, Message{DemandAdvert{0.0}}, 0.5);
  b.handle(3, Message{DemandAdvert{13.0}}, 0.5);

  std::vector<NodeId> partners;
  const auto record = [&](std::vector<Outbound> outs) {
    for (const Outbound& o : outs) {
      if (std::holds_alternative<SessionRequest>(o.msg)) partners.push_back(o.to);
    }
  };
  record(b.on_session_timer(1.0));  // t=1
  // The shift: A' = 0, C' = 9, advertised before the next session.
  b.handle(0, Message{DemandAdvert{0.0}}, 1.5);
  b.handle(2, Message{DemandAdvert{9.0}}, 1.5);
  record(b.on_session_timer(2.0));  // t=2
  record(b.on_session_timer(3.0));  // t=3

  const std::vector<NodeId> expected =
      variant == "dynamic" ? std::vector<NodeId>{3, 2, 0}    // B-D, B-C', B-A'
                           : std::vector<NodeId>{3, 0, 2};   // B-D, B-A, B-C
  TrialResult out;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    out.value("partner_" + std::to_string(i + 1),
              static_cast<double>(partners[i]));
  }
  out.counter("matches_paper", partners == expected ? 1 : 0);
  return out;
}

// ------------------------------------------------------------- fig5 / 6 ----

/// One sweep point per algorithm on BA graphs of `n` nodes with uniform
/// random demand — the Figure 5/6 setup.
std::vector<SweepPoint> ba_algorithm_sweep(std::size_t n, double paper_fast,
                                           double paper_weak) {
  std::vector<SweepPoint> sweep;
  for (const std::string& algo : three_algorithm_names()) {
    SweepPoint point;
    point.label = algo;
    point.tags = {{"algo", algo}, {"topo", "ba"}};
    point.params = {{"n", static_cast<double>(n)}};
    // Pair the three curves on identical topologies/demands/writers per
    // trial index (the retired benches ran all algorithms on one seed).
    point.seed_group = 0;
    if (algo == "fast") {
      point.reference = {{"paper_mean_sessions_to_full", paper_fast},
                         {"paper_high_demand_sessions", 1.0}};
    } else if (algo == "weak") {
      point.reference = {{"paper_mean_sessions_to_full", paper_weak}};
    }
    sweep.push_back(std::move(point));
  }
  return sweep;
}

TrialResult figure_cdf_trial(const SweepPoint& point, std::uint64_t seed,
                             TrialContext& ctx) {
  return propagation_trial(point, seed,
                           algorithm_config(tag_or(point.tags, "algo", "fast")),
                           uniform_demand(), ctx);
}

}  // namespace

void register_paper_scenarios(ScenarioRegistry& registry) {
  {
    ScenarioSpec spec;
    spec.name = "sec2";
    spec.title = "§2 running example: demand table, session order, 18-step walkthrough";
    spec.paper_ref = "§2, §2.1";
    spec.description =
        "Replays the five-replica example (demands A=4 B=6 C=3 D=8 E=7): "
        "checks B's demand-ordered cycle is B-D, B-E, B-A, B-C and that the "
        "protocol walkthrough delivers E's write to D via the fast push.";
    SweepPoint point;
    point.label = "walkthrough";
    spec.sweep.push_back(std::move(point));
    spec.trials = 1;
    spec.smoke_trials = 1;
    spec.run = sec2_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig3";
    spec.title = "Figure 3: requests served with consistent content per session";
    spec.paper_ref = "§2, Figure 3";
    spec.description =
        "Five-replica star of §2; the measured fast-consistency curve should "
        "dominate the analytic optimal order at every session boundary "
        "because the fast push serves D without consuming a session.";
    SweepPoint point;
    point.label = "star-5";
    point.tags = {{"algo", "fast"}};
    const auto worst = fig3_series_for_order({2, 0, 4, 3});    // B-C B-A B-E B-D
    const auto optimal = fig3_series_for_order({3, 4, 0, 2});  // B-D B-E B-A B-C
    for (std::size_t k = 0; k < 4; ++k) {
      point.reference.emplace_back("worst_session_" + std::to_string(k + 1),
                                   worst[k]);
      point.reference.emplace_back("optimal_session_" + std::to_string(k + 1),
                                   optimal[k]);
    }
    spec.sweep.push_back(std::move(point));
    spec.trials = 2000;
    spec.smoke_trials = 25;
    spec.run = fig3_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig4";
    spec.title = "Figure 4: dynamic demand re-routes the session order";
    spec.paper_ref = "§3-§4, Figure 4";
    spec.description =
        "Demand shift A:2->0, C:0->9 after the first session. The dynamic "
        "§4 algorithm must choose B-D, B-C', B-A'; the static §2 variant "
        "mis-routes to the stale order B-D, B-A, B-C.";
    for (const char* variant : {"dynamic", "static"}) {
      SweepPoint point;
      point.label = variant;
      point.tags = {{"selection", variant}};
      spec.sweep.push_back(std::move(point));
    }
    spec.trials = 1;
    spec.smoke_trials = 1;
    spec.run = fig4_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig5";
    spec.title = "Figure 5: CDF of sessions to propagate a change, 50 nodes";
    spec.paper_ref = "§5, Figure 5";
    spec.description =
        "BRITE-like (Barabási–Albert) topologies with 50 nodes, uniform "
        "random demands, a change at a random replica. Paper: fast reaches "
        "all replicas in 3.9261 mean sessions vs 6.1499 for weak; "
        "high-demand replicas converge in ~1 session.";
    spec.sweep = ba_algorithm_sweep(50, 3.9261, 6.1499);
    spec.trials = 10000;
    spec.smoke_trials = 6;
    spec.smoke_overrides = {{"n", 12}};
    spec.run = figure_cdf_trial;
    registry.add(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig6";
    spec.title = "Figure 6: CDF of sessions to propagate a change, 100 nodes";
    spec.paper_ref = "§5, Figure 6";
    spec.description =
        "The Figure 5 experiment at 100 nodes. Paper: fast 4.78117 vs weak "
        "6.982 mean sessions to full; doubling the node count grows the "
        "session count only mildly (it tracks the diameter).";
    spec.sweep = ba_algorithm_sweep(100, 4.78117, 6.982);
    spec.trials = 10000;
    spec.smoke_trials = 4;
    spec.smoke_overrides = {{"n", 16}};
    spec.run = figure_cdf_trial;
    registry.add(std::move(spec));
  }
}

}  // namespace fastcons::harness
