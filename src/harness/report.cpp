#include "harness/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "harness/registry.hpp"
#include "stats/table.hpp"

namespace fastcons::harness {
namespace {

/// Quantile grid used for the distribution summaries. Dense enough to
/// redraw the paper's CDF figures, small enough to diff by eye.
constexpr double kQuantiles[] = {0.05, 0.10, 0.25, 0.50, 0.75,
                                 0.90, 0.95, 0.99, 1.00};

JsonValue params_to_json(const ParamMap& params) {
  JsonValue obj = JsonValue::object();
  for (const auto& [key, value] : params) obj.add(key, value);
  return obj;
}

JsonValue tags_to_json(const TagMap& tags) {
  JsonValue obj = JsonValue::object();
  for (const auto& [key, value] : tags) obj.add(key, value);
  return obj;
}

JsonValue stats_to_json(const OnlineStats& stats) {
  JsonValue obj = JsonValue::object();
  obj.add("count", stats.count());
  obj.add("mean", stats.mean());
  obj.add("stddev", std::sqrt(stats.variance()));
  obj.add("min", stats.min());
  obj.add("max", stats.max());
  return obj;
}

JsonValue cdf_to_json(const EmpiricalCdf& cdf) {
  JsonValue obj = JsonValue::object();
  obj.add("count", static_cast<std::uint64_t>(cdf.count()));
  if (!cdf.empty()) {
    obj.add("mean", cdf.mean());
    obj.add("min", cdf.min());
    obj.add("max", cdf.max());
    JsonValue quantiles = JsonValue::object();
    for (const double q : kQuantiles) {
      char key[8];
      std::snprintf(key, sizeof(key), "p%02d", static_cast<int>(q * 100.0));
      quantiles.add(key, cdf.quantile(q));
    }
    obj.add("quantiles", std::move(quantiles));
  }
  return obj;
}

/// Events/sec from a point's timing sums; 0 when nothing was measured.
double events_per_sec(const PointResult& point) {
  if (point.wall_ms <= 0.0 || point.events_executed == 0) return 0.0;
  return static_cast<double>(point.events_executed) / (point.wall_ms / 1000.0);
}

JsonValue point_to_json(const PointResult& point, bool include_timing) {
  JsonValue obj = JsonValue::object();
  obj.add("label", point.point.label);
  obj.add("index", static_cast<std::uint64_t>(point.index));
  obj.add("trials", static_cast<std::uint64_t>(point.trials));
  if (!point.point.params.empty()) {
    obj.add("params", params_to_json(point.point.params));
  }
  if (!point.point.tags.empty()) {
    obj.add("tags", tags_to_json(point.point.tags));
  }
  if (!point.point.reference.empty()) {
    obj.add("reference", params_to_json(point.point.reference));
  }
  JsonValue metrics = JsonValue::object();
  for (const auto& [name, stats] : point.values) {
    metrics.add(name, stats_to_json(stats));
  }
  obj.add("metrics", std::move(metrics));
  JsonValue distributions = JsonValue::object();
  for (const auto& [name, cdf] : point.samples) {
    distributions.add(name, cdf_to_json(cdf));
  }
  obj.add("distributions", std::move(distributions));
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : point.counters) counters.add(name, value);
  obj.add("counters", std::move(counters));
  if (include_timing) {
    JsonValue timing = JsonValue::object();
    timing.add("wall_ms", point.wall_ms);
    timing.add("construction_ms", point.construction_ms);
    timing.add("event_ms", point.event_ms());
    timing.add("events_executed", point.events_executed);
    timing.add("events_per_sec", events_per_sec(point));
    obj.add("timing", std::move(timing));
  }
  return obj;
}

}  // namespace

JsonValue scenario_to_json(const ScenarioResult& result, bool include_timing) {
  JsonValue obj = JsonValue::object();
  obj.add("schema_version", kResultsSchemaVersion);
  obj.add("scenario", result.name);
  obj.add("title", result.title);
  obj.add("paper_ref", result.paper_ref);
  obj.add("description", result.description);
  obj.add("mode", result.smoke ? "smoke" : "full");
  obj.add("base_seed", result.base_seed);
  JsonValue points = JsonValue::array();
  for (const PointResult& point : result.points) {
    points.push_back(point_to_json(point, include_timing));
  }
  obj.add("points", std::move(points));
  return obj;
}

JsonValue rollup_to_json(const std::vector<ScenarioResult>& results,
                         bool include_timing) {
  JsonValue obj = JsonValue::object();
  obj.add("schema_version", kResultsSchemaVersion);
  obj.add("mode", !results.empty() && results.front().smoke ? "smoke" : "full");
  JsonValue scenarios = JsonValue::array();
  for (const ScenarioResult& result : results) {
    scenarios.push_back(scenario_to_json(result, include_timing));
  }
  obj.add("scenarios", std::move(scenarios));
  return obj;
}

namespace {

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw Error("cannot create results directory '" + dir + "': " +
                ec.message());
  }
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  if (!out) throw Error("cannot write results file '" + path + "'");
}

}  // namespace

std::string write_scenario_file(const ScenarioResult& result,
                                const std::string& dir) {
  ensure_dir(dir);
  write_file(dir + "/" + result.name + ".json",
             scenario_to_json(result, /*include_timing=*/true).dump_pretty());
  return digest_hex(scenario_to_json(result).dump());
}

std::string write_results(const std::vector<ScenarioResult>& results,
                          const std::string& dir) {
  ensure_dir(dir);
  std::string digests;
  for (const ScenarioResult& result : results) {
    digests += result.name;
    digests += ' ';
    digests += write_scenario_file(result, dir);
    digests += '\n';
  }
  write_file(dir + "/BENCH_RESULTS.json",
             rollup_to_json(results, /*include_timing=*/true).dump_pretty());
  const std::string rollup_digest = digest_hex(rollup_to_json(results).dump());
  digests += "rollup ";
  digests += rollup_digest;
  digests += '\n';
  write_file(dir + "/DIGESTS.txt", digests);
  return rollup_digest;
}

void print_scenario(const ScenarioResult& result, std::ostream& out) {
  out << "== " << result.name << " — " << result.title << " ("
      << result.paper_ref << ") ==\n";
  out << (result.smoke ? "mode: smoke" : "mode: full")
      << ", base seed " << result.base_seed << "\n";

  // One row per (point, metric); mirrors what the retired per-binary
  // benches printed, but uniformly across every scenario.
  Table table({"point", "trials", "metric", "mean", "stddev", "p50", "p99",
               "max"});
  for (const PointResult& point : result.points) {
    const std::string trials = Table::num(static_cast<std::uint64_t>(point.trials));
    for (const auto& [name, stats] : point.values) {
      table.add_row({point.point.label, trials, name, Table::num(stats.mean()),
                     Table::num(std::sqrt(stats.variance())), "-", "-",
                     Table::num(stats.max())});
    }
    for (const auto& [name, cdf] : point.samples) {
      if (cdf.empty()) continue;
      table.add_row({point.point.label, trials, name, Table::num(cdf.mean()),
                     "-", Table::num(cdf.quantile(0.5)),
                     Table::num(cdf.quantile(0.99)), Table::num(cdf.max())});
    }
  }
  table.print(out);

  bool printed_header = false;
  for (const PointResult& point : result.points) {
    for (const auto& [name, value] : point.counters) {
      if (name != "trials_converged") continue;
      if (!printed_header) {
        out << "converged: ";
        printed_header = true;
      } else {
        out << ", ";
      }
      out << point.point.label << " " << value << "/" << point.trials;
    }
  }
  if (printed_header) out << "\n";

  double wall_ms = 0.0;
  double construction_ms = 0.0;
  std::uint64_t events = 0;
  for (const PointResult& point : result.points) {
    wall_ms += point.wall_ms;
    construction_ms += point.construction_ms;
    events += point.events_executed;
  }
  out << "timing: " << events << " events in " << Table::num(wall_ms)
      << " ms";
  if (wall_ms > 0.0 && events > 0) {
    out << " (" << Table::num(static_cast<double>(events) / (wall_ms / 1000.0))
        << " events/sec)";
  }
  if (wall_ms > 0.0) {
    out << ", construction " << Table::num(construction_ms) << " ms ("
        << Table::num(100.0 * construction_ms / wall_ms) << "% of wall)";
  }
  out << "\n";
}

int legacy_bench_main(const std::vector<std::string>& scenario_names) {
  try {
    const ScenarioRegistry registry = builtin_registry();
    RunOptions options;
    options.jobs = static_cast<std::size_t>(env_u64("FASTCONS_JOBS", 0));
    const std::uint64_t reps = env_u64("FASTCONS_REPS", 0);
    if (reps != 0) options.trials = static_cast<std::size_t>(reps);

    std::vector<ScenarioResult> results;
    for (const std::string& name : scenario_names) {
      results.push_back(run_scenario(registry.get(name), options));
      print_scenario(results.back(), std::cout);
      std::cout << "\n";
    }

    // Per-scenario files only: a stub run covers a slice of the registry,
    // so it must not overwrite the all-scenario BENCH_RESULTS.json roll-up.
    const char* env = std::getenv("FASTCONS_CSV_DIR");
    const std::string dir = env != nullptr ? env : "bench_results";
    if (!dir.empty()) {
      for (const ScenarioResult& result : results) {
        const std::string digest = write_scenario_file(result, dir);
        std::cout << "results: " << dir << "/" << result.name
                  << ".json (digest " << digest << ")\n";
      }
    }
    std::cout << "note: this stub is superseded by `fastcons_bench`; see "
                 "docs/experiments.md\n";

    // The retired binaries exited nonzero when a paper check failed (fig4's
    // session orders, sec2's cycle); preserve that contract for scripts and
    // CI: any *matches_paper counter below its trial count fails the run.
    for (const ScenarioResult& result : results) {
      for (const PointResult& point : result.points) {
        for (const auto& [name, value] : point.counters) {
          if (name.size() >= 13 &&
              name.compare(name.size() - 13, 13, "matches_paper") == 0 &&
              value < point.trials) {
            std::cerr << "MISMATCH: " << result.name << "/"
                      << point.point.label << " " << name << " = " << value
                      << "/" << point.trials << "\n";
            return 1;
          }
        }
      }
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace fastcons::harness
