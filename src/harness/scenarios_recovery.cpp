// The "recovery" scenario family: crash a durable replica, bring it back,
// and clock both halves of its recovery — local replay (checkpoint + WAL
// off disk, no network) and demand-ordered catch-up (the anti-entropy
// sessions that re-fetch what was written while it was down).
//
// The topology is a 5-node line 0-1-2-3-4 with node 2 as the victim. Its
// two sides are demand-asymmetric (0,1 hot; 3,4 cold), so while 2 is down
// the line is partitioned into a hot half and a cold half, each absorbing
// its own writes. On restart the recovered node should serve the hot side's
// keys first — the paper's demand ordering applied to the recovery path —
// which the hot/cold catch-up split below makes directly observable.
//
// Like the "live" family these are wall-clock measurements of this host
// (and its disk), so the family lives in live_registry(), outside the
// digest-pinned builtin registry.
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness/scenarios.hpp"
#include "net/cluster.hpp"
#include "net/pacer.hpp"
#include "topology/generators.hpp"

namespace fastcons::harness {
namespace {

constexpr std::size_t kNodes = 5;
constexpr NodeId kVictim = 2;      // middle of the line: sole bridge
constexpr NodeId kHotWriter = 0;   // writes on the high-demand side
constexpr NodeId kColdWriter = 4;  // writes on the low-demand side

/// Demands along the line: the victim's neighbour 1 (hot side) far
/// outweighs neighbour 3 (cold side), so the demand-ordered catch-up queue
/// is {1, 3} whether it comes from a checkpoint or the first advert round.
/// The victim's own demand is the lowest on purpose: neither side's demand
/// cycle nor its fast-push gradient then prefers the victim, so what it
/// regains after restart comes from the sessions it initiates itself — the
/// catch-up order under test — not from ambient pushes into it.
const std::vector<double> kDemands = {90.0, 80.0, 5.0, 10.0, 8.0};

TrialResult recovery_trial(const SweepPoint& point, std::uint64_t seed,
                           TrialContext& /*ctx*/) {
  using Clock = std::chrono::steady_clock;
  namespace fs = std::filesystem;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  const auto preload =
      static_cast<std::uint64_t>(param_or(point.params, "preload", 1024.0));
  const double rate = param_or(point.params, "downtime_rate", 200.0);
  const double downtime_seconds =
      param_or(point.params, "downtime_seconds", 1.0);
  const auto checkpoint_every = static_cast<std::uint64_t>(
      param_or(point.params, "checkpoint_every", 0.0));
  const double timeout = param_or(point.params, "timeout_s", 30.0);

  // Scratch directory under the working directory (unique per trial: the
  // seed is a pure function of scenario/point/trial), removed on the way
  // out. A leftover from an aborted run is wiped first so recovery never
  // reads another trial's state.
  std::string label = point.label;
  for (char& c : label) {
    if (c == '/') c = '-';
  }
  const fs::path dir = fs::path("fastcons-recovery-scratch") /
                       (label + "-" + std::to_string(seed));
  std::error_code ec;
  fs::remove_all(dir, ec);

  Rng rng(seed);
  const Graph topology = make_line(kNodes, LatencyRange{}, rng);
  ClusterConfig cfg;
  cfg.protocol = ProtocolConfig::fast();  // adverts on, as in deployment
  cfg.seconds_per_unit = param_or(point.params, "seconds_per_unit", 0.02);
  cfg.seed = rng.next_u64();
  cfg.demands = kDemands;
  cfg.durability_dir = dir.string();
  // fsync stays off: the benchmark measures replay and catch-up, not the
  // host's fdatasync latency (the crash-consistency tests cover sync).
  cfg.checkpoint_every = checkpoint_every;

  LocalCluster cluster(topology, cfg);
  cluster.start();

  // Phase 1: preload through the victim, so its WAL (or checkpoint + WAL
  // suffix) holds every key, then wait for the cluster to hold them all.
  for (std::uint64_t i = 0; i < preload; ++i) {
    cluster.server(kVictim).write("pre/" + std::to_string(i), "v");
  }
  const bool preloaded = cluster.wait_for_convergence(timeout, preload);

  // Phase 2: kill the bridge and keep writing on both severed sides at the
  // configured rate — the backlog catch-up must repair.
  cluster.kill(kVictim);
  const auto downtime_writes =
      static_cast<std::uint64_t>(rate * downtime_seconds);
  const auto down_start = Clock::now();
  const RatePacer pacer(down_start, rate);
  for (std::uint64_t i = 0; i < downtime_writes; ++i) {
    auto now = Clock::now();
    while (now < pacer.due(i)) {
      std::this_thread::sleep_for(pacer.sleep_toward(i, now));
      now = Clock::now();
    }
    cluster.server(kHotWriter).write("hot/" + std::to_string(i), "v");
    cluster.server(kColdWriter).write("cold/" + std::to_string(i), "v");
  }
  // Let each severed side settle internally, so the backlog the recovered
  // node fetches is complete at its first-hop peers (1 and 3) and the hot/
  // cold timings measure catch-up transfer, not leftover intra-side
  // propagation racing the restart.
  const auto settle_deadline =
      Clock::now() + std::chrono::duration<double>(timeout);
  const std::uint64_t side_total = preload + downtime_writes;
  bool sides_settled = false;
  while (Clock::now() < settle_deadline) {
    // The count check matters: write() only enqueues, so two summaries can
    // compare equal while the tail of the burst still sits in the writer's
    // command queue.
    const SummaryVector hot_side = cluster.server(kHotWriter).summary();
    const SummaryVector cold_side = cluster.server(kColdWriter).summary();
    if (hot_side.total() >= side_total && cold_side.total() >= side_total &&
        hot_side == cluster.server(1).summary() &&
        cold_side == cluster.server(3).summary()) {
      sides_settled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  // Phase 3: restart in recover mode. Local replay happens inside
  // restart() (ReplicaServer::start()); what it found is in recovery_info.
  const auto t_restart = Clock::now();
  cluster.restart(kVictim, RestartMode::recover);
  const RecoveryInfo rec = cluster.server(kVictim).recovery_info();

  // Phase 4: clock catch-up at the recovered node, hot and cold sides
  // separately. Confirmed counts only advance in key order, so each pass
  // is O(new keys), not O(all keys).
  std::uint64_t hot_seen = 0;
  std::uint64_t cold_seen = 0;
  double hot_first_ms = -1.0;
  double cold_first_ms = -1.0;
  double hot_ms = -1.0;
  double cold_ms = -1.0;
  const auto deadline =
      t_restart + std::chrono::duration<double>(timeout);
  while (Clock::now() < deadline) {
    ReplicaServer& victim = cluster.server(kVictim);
    while (hot_seen < downtime_writes &&
           victim.read("hot/" + std::to_string(hot_seen)).has_value()) {
      ++hot_seen;
    }
    while (cold_seen < downtime_writes &&
           victim.read("cold/" + std::to_string(cold_seen)).has_value()) {
      ++cold_seen;
    }
    // One timestamp per pass: when hot and cold both complete between two
    // polls, their times tie EXACTLY and the ordering below reports the
    // tie honestly instead of crediting whichever side was checked first.
    const double t = ms_since(t_restart);
    if (hot_first_ms < 0.0 && hot_seen > 0) hot_first_ms = t;
    if (cold_first_ms < 0.0 && cold_seen > 0) cold_first_ms = t;
    if (hot_ms < 0.0 && hot_seen == downtime_writes) hot_ms = t;
    if (cold_ms < 0.0 && cold_seen == downtime_writes) cold_ms = t;
    if (hot_ms >= 0.0 && cold_ms >= 0.0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  // Who drove the catch-up: sessions the victim initiated (its demand-
  // ordered queue + periodic timer) vs sessions peers initiated into it.
  const EngineStats victim_stats = cluster.server(kVictim).stats();

  const bool hot_caught_up = hot_ms >= 0.0;
  const bool cold_caught_up = cold_ms >= 0.0;
  if (hot_ms < 0.0) hot_ms = ms_since(t_restart);
  if (cold_ms < 0.0) cold_ms = ms_since(t_restart);

  // Phase 5: full convergence (identical summaries everywhere) and a
  // key-value digest cross-check against a surviving peer.
  const std::uint64_t total_updates = preload + 2 * downtime_writes;
  const bool converged = cluster.wait_for_convergence(timeout, total_updates);
  const double total_ms = ms_since(t_restart);
  const bool digest_match = cluster.server(kVictim).kv_digest() ==
                            cluster.server(kHotWriter).kv_digest();
  cluster.stop();
  fs::remove_all(dir, ec);

  TrialResult out;
  out.value("preloaded", preloaded ? 1.0 : 0.0);
  out.value("sides_settled", sides_settled ? 1.0 : 0.0);
  out.value("converged", converged ? 1.0 : 0.0);
  out.value("kv_digest_match", digest_match ? 1.0 : 0.0);
  out.value("recovered_from_disk", rec.recovered_from_disk ? 1.0 : 0.0);
  out.value("had_checkpoint", rec.had_checkpoint ? 1.0 : 0.0);
  out.value("restored_updates", static_cast<double>(rec.restored_updates));
  // No full resync: everything written before the crash came back off disk.
  out.value("resync_avoided",
            rec.restored_updates >= preload ? 1.0 : 0.0);
  out.value("local_recovery_ms", rec.load_ms);
  out.value("wal_replay_records", static_cast<double>(rec.wal_records));
  out.value("wal_replay_bytes", static_cast<double>(rec.wal_bytes));
  out.value("checkpoint_updates",
            static_cast<double>(rec.checkpoint_updates));
  out.value("hot_caught_up", hot_caught_up ? 1.0 : 0.0);
  out.value("cold_caught_up", cold_caught_up ? 1.0 : 0.0);
  out.value("hot_first_ms", hot_first_ms);
  out.value("cold_first_ms", cold_first_ms);
  out.value("hot_catchup_ms", hot_ms);
  out.value("cold_catchup_ms", cold_ms);
  // 1 = hot side strictly first, 0 = cold strictly first, 0.5 = both
  // completed inside one poll window (indistinguishable at this scale).
  out.value("hot_before_cold",
            !hot_caught_up                         ? 0.0
            : !cold_caught_up || hot_ms < cold_ms  ? 1.0
            : hot_ms == cold_ms                    ? 0.5
                                                   : 0.0);
  out.value("total_catchup_ms", total_ms);
  out.value("downtime_writes_per_side",
            static_cast<double>(downtime_writes));
  out.counter("wal_records", rec.wal_records);
  out.counter("wal_bytes", rec.wal_bytes);
  out.value("victim_sessions_initiated",
            static_cast<double>(victim_stats.sessions_initiated));
  out.value("victim_sessions_responded",
            static_cast<double>(victim_stats.sessions_responded));
  return out;
}

/// One sweep point; params omitted here fall back to the trial defaults
/// (preload 1024, downtime_rate 200, checkpoint_every 0 = WAL only).
void add_recovery_point(std::vector<SweepPoint>& sweep,
                        const std::string& label, ParamMap params) {
  SweepPoint point;
  point.label = label;
  point.params = std::move(params);
  sweep.push_back(std::move(point));
}

}  // namespace

void register_recovery_scenarios(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.name = "recovery";
  spec.title = "Durable recovery: WAL replay time and demand-first catch-up";
  spec.paper_ref = "§3-4 (rapid updating, applied to the recovery path)";
  spec.description =
      "Crash-and-recover benchmark for the durability layer. A 5-node line "
      "with a demand-hot side (0,1) and a demand-cold side (3,4) preloads "
      "writes through the middle node, kills it, keeps writing on both "
      "severed sides, then restarts it in recover mode. Reported per point: "
      "local recovery time vs WAL size (wal-* points) and vs checkpoint "
      "presence (checkpointed point), catch-up time vs the downtime write "
      "rate (rate-* points), and whether the demand-hot side's keys became "
      "readable before the cold side's (hot_before_cold — the paper's "
      "demand ordering on the recovery path). resync_avoided = 1 means the "
      "pre-crash state came back from disk, not from peers. Wall-clock "
      "measurements of this host — excluded from the determinism digests.";
  add_recovery_point(spec.sweep, "wal-256", {{"preload", 256}});
  add_recovery_point(spec.sweep, "wal-1024", {{"preload", 1024}});
  add_recovery_point(spec.sweep, "wal-4096", {{"preload", 4096}});
  add_recovery_point(spec.sweep, "checkpointed-4096",
                     {{"preload", 4096}, {"checkpoint_every", 32}});
  add_recovery_point(spec.sweep, "rate-50",
                     {{"preload", 1024}, {"downtime_rate", 50}});
  add_recovery_point(spec.sweep, "rate-400",
                     {{"preload", 1024}, {"downtime_rate", 400}});
  spec.trials = 3;
  spec.smoke_trials = 1;
  // Smoke: small preloads and a short downtime window, same five phases.
  // checkpoint_every is per-point, so the checkpointed point still writes
  // checkpoints (64 / 32 = 2 of them) under smoke.
  spec.smoke_overrides = {{"preload", 64},
                          {"downtime_rate", 60.0},
                          {"downtime_seconds", 0.4},
                          {"timeout_s", 20.0}};
  spec.run = recovery_trial;
  registry.add(std::move(spec));
}

ScenarioRegistry live_registry() {
  ScenarioRegistry registry;
  register_live_scenarios(registry);
  register_recovery_scenarios(registry);
  return registry;
}

}  // namespace fastcons::harness
