/// @file
/// Multi-threaded trial execution and order-independent aggregation.
#ifndef FASTCONS_HARNESS_RUNNER_HPP
#define FASTCONS_HARNESS_RUNNER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "stats/cdf.hpp"
#include "stats/online_stats.hpp"

namespace fastcons::harness {

/// Execution knobs shared by the CLI, the legacy bench stubs and the tests.
struct RunOptions {
  /// Worker threads. 0 means hardware_concurrency (min 1). Results are
  /// bit-identical for every value: trials are seeded by index and
  /// aggregated in index order.
  std::size_t jobs = 1;

  /// Tiny-scale mode: smoke_trials per point and smoke_overrides applied.
  bool smoke = false;

  /// Base seed fed into derive_trial_seed.
  std::uint64_t base_seed = 42;

  /// Overrides the spec's trial count (per sweep point, before the
  /// per-point divisor). Used by FASTCONS_REPS and --trials.
  std::optional<std::size_t> trials = std::nullopt;

  /// When set, only sweep points whose label contains this substring run.
  /// Point indices (and therefore seeds and results) are unaffected by the
  /// filtering, so a filtered run reproduces the same numbers.
  std::string sweep_filter;
};

/// Aggregated results of one sweep point.
struct PointResult {
  /// The point as executed (smoke overrides applied).
  SweepPoint point;

  /// Index of the point in the spec's sweep (stable under --sweep filters).
  std::size_t index = 0;

  /// Trials executed for this point.
  std::size_t trials = 0;

  /// Scalar metrics: per-trial values reduced to count/mean/stddev/min/max.
  std::vector<std::pair<std::string, OnlineStats>> values;

  /// Distributions: samples pooled across trials.
  std::vector<std::pair<std::string, EmpiricalCdf>> samples;

  /// Counters summed across trials.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  // -- measurements, not results ---------------------------------------
  // Wall-clock data the runner collects around the trial functions. They
  // are serialised into the results files (a "timing" object per point)
  // but excluded from the result digests: two runs with equal digests are
  // equal experiments, however fast the hardware ran them.

  /// Summed wall-clock time of this point's trials, in milliseconds.
  double wall_ms = 0.0;

  /// Portion of wall_ms spent constructing trial state (topology
  /// generation, demand models, network wiring) as reported by
  /// ConstructionCost scopes inside the trial functions. The construction
  /// tax the pooled-context reset path exists to remove; 0 for trials that
  /// mark no construction region.
  double construction_ms = 0.0;

  /// Simulator events executed by this point's trials (0 for trials that
  /// drive engines directly without a Simulator).
  std::uint64_t events_executed = 0;

  /// wall_ms minus the construction share: time spent executing events and
  /// collecting metrics.
  double event_ms() const noexcept { return wall_ms - construction_ms; }
};

/// Aggregated results of one scenario run.
struct ScenarioResult {
  std::string name;
  std::string title;
  std::string paper_ref;
  std::string description;
  bool smoke = false;
  std::uint64_t base_seed = 0;
  std::vector<PointResult> points;
};

/// Runs every (selected) sweep point of `spec` with `options.jobs` worker
/// threads. Trials execute in arbitrary order across threads; aggregation
/// happens afterwards in (point, trial) index order, so the returned
/// ScenarioResult — and its JSON serialisation — is bit-identical
/// regardless of thread count. Exceptions thrown by trial functions are
/// rethrown here (the one from the lowest task index wins).
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOptions& options);

}  // namespace fastcons::harness

#endif  // FASTCONS_HARNESS_RUNNER_HPP
