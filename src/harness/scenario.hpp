/// @file
/// Declarative experiment scenarios.
///
/// A ScenarioSpec describes one of the paper's experiments as data: a sweep
/// of configuration points (topology x algorithm x workload parameters), a
/// trial count per point, and a trial function that runs ONE independent
/// repetition from a derived seed. The TrialRunner (runner.hpp) fans trials
/// out across threads; because every trial is seeded purely from
/// (base_seed, scenario, point, trial) and aggregation happens in trial
/// order, results are bit-identical for any thread count.
#ifndef FASTCONS_HARNESS_SCENARIO_HPP
#define FASTCONS_HARNESS_SCENARIO_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/trial_context.hpp"

namespace fastcons::harness {

/// Ordered key/value numeric parameters. A vector of pairs rather than a map
/// so JSON output preserves declaration order deterministically.
using ParamMap = std::vector<std::pair<std::string, double>>;

/// Ordered key/value string tags (algorithm names, topology kinds).
using TagMap = std::vector<std::pair<std::string, std::string>>;

/// Looks up `key` in `params`; returns `fallback` when absent.
double param_or(const ParamMap& params, const std::string& key,
                double fallback);

/// Looks up `key` in `tags`; returns `fallback` when absent.
std::string tag_or(const TagMap& tags, const std::string& key,
                   const std::string& fallback);

/// Replaces or inserts `key` in `params`.
void set_param(ParamMap& params, const std::string& key, double value);

/// One point of a scenario's parameter sweep.
struct SweepPoint {
  /// Unique within the scenario; used in output and for --sweep filtering
  /// (e.g. "fast/ba-50").
  std::string label;

  /// Numeric knobs the trial function reads (node counts, rates, periods).
  ParamMap params;

  /// String knobs the trial function reads (algorithm / topology names).
  TagMap tags;

  /// Static reference values echoed into the results file: paper-reported
  /// numbers, analytic curves, structural metrics of a sample topology.
  ParamMap reference;

  /// Per-point divisor on the scenario's trial count (expensive sweep points
  /// run fewer trials, like the diameter-scaling bench always did).
  std::size_t trials_divisor = 1;

  /// Seed-pairing group: points sharing a group value get the SAME seed for
  /// the same trial index, so algorithm variants compare on identical
  /// random instances (topologies, demands, writers) — the common-random-
  /// numbers variance reduction the paper-comparison tables rely on.
  /// Unset: the point seeds from its own sweep index (fully independent).
  std::optional<std::size_t> seed_group;
};

/// Everything one trial observed. Field order inside each vector is the
/// insertion order and is preserved into the JSON output.
struct TrialResult {
  /// Scalar observations, aggregated across trials into mean/stddev/min/max.
  std::vector<std::pair<std::string, double>> values;

  /// Sample sets, pooled across trials into an empirical CDF.
  std::vector<std::pair<std::string, std::vector<double>>> samples;

  /// Monotone counters, summed across trials.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// Appends a scalar observation.
  void value(std::string name, double v) {
    values.emplace_back(std::move(name), v);
  }
  /// Appends a pooled sample set.
  void sample(std::string name, std::vector<double> v) {
    samples.emplace_back(std::move(name), std::move(v));
  }
  /// Appends a counter increment.
  void counter(std::string name, std::uint64_t v) {
    counters.emplace_back(std::move(name), v);
  }
};

/// Runs one independent repetition of a sweep point. `seed` is the only
/// source of randomness; implementations must not read clocks, globals or
/// the environment, so any two invocations with equal arguments return
/// equal results on any thread. `ctx` is the calling worker's pooled
/// state (see trial_context.hpp): anything stashed there may be reused by
/// later trials on the same worker, and MUST NOT change results — a trial
/// run with a fresh context and one run with a heavily reused context
/// return identical TrialResults (the reset-equivalence tests enforce
/// this for every registered scenario).
using TrialFn = std::function<TrialResult(
    const SweepPoint& point, std::uint64_t seed, TrialContext& ctx)>;

/// A complete experiment description. Instances live in the
/// ScenarioRegistry (registry.hpp); the 13 built-ins port the historical
/// bench_* binaries.
struct ScenarioSpec {
  /// Registry key and results-file stem, e.g. "fig5".
  std::string name;

  /// One-line human title.
  std::string title;

  /// Paper anchor, e.g. "§5, Figure 5".
  std::string paper_ref;

  /// What the experiment shows and what shape to expect.
  std::string description;

  /// The sweep; at least one point.
  std::vector<SweepPoint> sweep;

  /// Independent repetitions per sweep point at full scale.
  std::size_t trials = 1;

  /// Repetitions per point under --smoke.
  std::size_t smoke_trials = 1;

  /// Parameter overrides applied to every point under --smoke (smaller
  /// topologies, shorter horizons). Keys absent from a point's params are
  /// inserted, so trial functions can rely on param_or defaults otherwise.
  ParamMap smoke_overrides;

  /// Runs one repetition.
  TrialFn run;
};

/// Derives the seed for one trial: a pure function of the base seed, the
/// scenario name, the sweep-point index and the trial index. Trials are
/// therefore independent of execution order and thread placement, and every
/// (scenario, point, trial) triple gets a well-separated stream.
std::uint64_t derive_trial_seed(std::uint64_t base_seed,
                                std::string_view scenario, std::size_t point,
                                std::size_t trial) noexcept;

}  // namespace fastcons::harness

#endif  // FASTCONS_HARNESS_SCENARIO_HPP
