#include "durability/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "durability/checkpoint.hpp"

namespace fastcons {
namespace {

void make_dirs(const std::string& dir) {
  // mkdir -p without std::filesystem: create each prefix, tolerating
  // already-exists at every step.
  std::string prefix;
  prefix.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) prefix.push_back('/');
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw TransportError("mkdir " + prefix + ": " + std::strerror(errno));
    }
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return bytes;  // missing file == empty log
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw TransportError("read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace

DurableStore::DurableStore(DurabilityConfig config)
    : config_(std::move(config)) {
  FASTCONS_EXPECTS(config_.enabled());
  make_dirs(config_.dir);
  wal_ = std::make_unique<WalWriter>(wal_path());
}

EngineSnapshot DurableStore::recover(NodeId self, RecoveryStats& stats) {
  stats = RecoveryStats{};
  EngineSnapshot snapshot;
  snapshot.self = self;
  if (std::optional<EngineSnapshot> cp = load_checkpoint(checkpoint_path());
      cp.has_value() && cp->self == self) {
    stats.had_checkpoint = true;
    stats.checkpoint_updates = cp->updates.size();
    snapshot = std::move(*cp);
  }
  const std::vector<std::uint8_t> image = read_file(wal_path());
  WalScanResult scan = scan_wal(image);
  stats.wal_records = scan.records;
  stats.wal_bytes = scan.valid_bytes;
  stats.wal_torn_tail = scan.torn_tail;
  if (scan.torn_tail) {
    // Drop the corrupt tail on disk too, so the next append extends the
    // valid prefix instead of landing after garbage a future replay would
    // stop at (orphaning everything written from now on).
    wal_->truncate(scan.valid_bytes);
  }
  records_since_checkpoint_ = scan.records;
  snapshot.updates.reserve(snapshot.updates.size() + scan.updates.size());
  for (Update& u : scan.updates) snapshot.updates.push_back(std::move(u));
  return snapshot;
}

void DurableStore::append(const std::vector<Update>& updates) {
  if (updates.empty()) return;
  scratch_.clear();
  for (const Update& u : updates) encode_wal_record(scratch_, u);
  wal_->append(scratch_);
  if (config_.fsync == FsyncPolicy::always) wal_->sync();
  records_since_checkpoint_ += updates.size();
}

void DurableStore::write_checkpoint(const EngineSnapshot& snapshot) {
  write_checkpoint_atomic(checkpoint_path(), snapshot);
  wal_->truncate(0);
  records_since_checkpoint_ = 0;
}

}  // namespace fastcons
