#include "durability/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "durability/crc32.hpp"
#include "replication/codec.hpp"

namespace fastcons {
namespace {

std::uint32_t read_u32_le(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void throw_errno(const char* what, const std::string& path) {
  throw TransportError(std::string(what) + " " + path + ": " +
                       std::strerror(errno));
}

}  // namespace

void encode_wal_record(std::vector<std::uint8_t>& out, const Update& update) {
  const std::size_t header_at = out.size();
  codec::put_u32(out, 0);  // payload length placeholder
  codec::put_u32(out, 0);  // crc placeholder
  const std::size_t payload_at = out.size();
  codec::put_u8(out, kWalRecordUpdate);
  codec::put_update(out, update);
  const auto payload_len = static_cast<std::uint32_t>(out.size() - payload_at);
  const std::uint32_t crc =
      crc32(std::span(out.data() + payload_at, payload_len));
  for (int i = 0; i < 4; ++i) {
    out[header_at + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
    out[header_at + 4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

WalScanResult scan_wal(std::span<const std::uint8_t> bytes) {
  WalScanResult result;
  std::size_t pos = 0;
  while (pos + kWalHeaderBytes <= bytes.size()) {
    const std::uint32_t payload_len = read_u32_le(bytes.data() + pos);
    const std::uint32_t stored_crc = read_u32_le(bytes.data() + pos + 4);
    if (payload_len == 0 || payload_len > kWalMaxPayload) break;
    if (pos + kWalHeaderBytes + payload_len > bytes.size()) break;  // torn
    const std::span<const std::uint8_t> payload(
        bytes.data() + pos + kWalHeaderBytes, payload_len);
    if (crc32(payload) != stored_crc) break;
    // CRC holds: the record was fully written. Decode failures past this
    // point mean an unknown-but-valid record (skip) — the update body codec
    // itself cannot fail on bytes the CRC vouches for unless a newer writer
    // extended the format, which the type byte namespaces.
    codec::Reader r(payload);
    try {
      // The whole decode — type byte included — sits inside the guard, so
      // scan_wal keeps its never-throws contract by construction (and the
      // throw-contract lint can prove it). The type read cannot fail today
      // (payload_len >= 1 is checked above), but the contract should not
      // depend on that arithmetic staying in sync.
      const std::uint8_t type = r.u8();
      if (type == kWalRecordUpdate) {
        Update u = codec::read_update(r);
        if (!r.exhausted()) break;  // valid CRC but wrong shape: corruption
        result.updates.push_back(std::move(u));
      }
    } catch (const CodecError&) {
      break;
    }
    ++result.records;
    pos += kWalHeaderBytes + payload_len;
    result.valid_bytes = pos;
  }
  result.torn_tail = result.valid_bytes != bytes.size();
  return result;
}

WalWriter::WalWriter(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("open WAL", path);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("seek WAL", path);
  }
  size_ = static_cast<std::uint64_t>(end);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::append(std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write WAL", "");
    }
    done += static_cast<std::size_t>(n);
  }
  size_ += bytes.size();
}

void WalWriter::sync() {
  if (::fdatasync(fd_) != 0) throw_errno("fdatasync WAL", "");
}

void WalWriter::truncate(std::uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
    throw_errno("ftruncate WAL", "");
  if (::lseek(fd_, 0, SEEK_END) < 0) throw_errno("seek WAL", "");
  size_ = size;
  sync();
}

}  // namespace fastcons
