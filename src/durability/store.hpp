// DurableStore: one replica's on-disk state — a checkpoint file plus the WAL
// suffix of updates applied since that checkpoint.
//
// Invariant: checkpoint ∪ WAL covers every update the replica ever
// acknowledged. Appends go to the WAL first; the checkpoint is rewritten
// periodically (atomic rename) and ONLY THEN is the WAL reset, so a crash
// between the two leaves the WAL overlapping the checkpoint — replay is
// idempotent (updates dedupe by id), never lossy.
//
// Note on determinism: this layer is scanned by tools/determinism_lint —
// no clocks, no unordered containers, no ambient randomness. Recovery
// timing is measured by the caller (src/net), which is outside the
// digest-bearing set.
#ifndef FASTCONS_DURABILITY_STORE_HPP
#define FASTCONS_DURABILITY_STORE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "durability/wal.hpp"

namespace fastcons {

/// When WAL appends reach the disk platter.
enum class FsyncPolicy : std::uint8_t {
  none,    ///< OS page cache decides; a *power* failure may lose the tail
  always,  ///< fdatasync after every append batch
};

struct DurabilityConfig {
  /// Directory holding this replica's `wal.log` and `checkpoint.bin`.
  /// Empty string disables durability entirely.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::none;
  /// Rewrite the checkpoint (and reset the WAL) after this many records
  /// accumulate in the log. 0 disables periodic checkpoints (WAL grows
  /// until an explicit checkpoint).
  std::uint64_t checkpoint_every = 4096;

  bool enabled() const noexcept { return !dir.empty(); }
};

/// What recovery found on disk.
struct RecoveryStats {
  bool had_checkpoint = false;
  bool wal_torn_tail = false;         ///< trailing bytes discarded on replay
  std::uint64_t checkpoint_updates = 0;  ///< payloads in the checkpoint image
  std::uint64_t wal_records = 0;      ///< valid WAL records replayed
  std::uint64_t wal_bytes = 0;        ///< valid WAL prefix length

  bool recovered_anything() const noexcept {
    return had_checkpoint || wal_records > 0;
  }
};

class DurableStore {
 public:
  /// Creates `config.dir` if needed and opens the WAL for appending.
  /// Requires config.enabled().
  explicit DurableStore(DurabilityConfig config);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Reads checkpoint + WAL into one snapshot for `self` (WAL updates are
  /// folded into snapshot.updates; ReplicaEngine::restore dedupes and
  /// re-derives the write counter). A torn WAL tail is truncated away on
  /// disk so subsequent appends extend the valid prefix. A checkpoint
  /// recorded by a different node id is treated as corrupt (ignored).
  EngineSnapshot recover(NodeId self, RecoveryStats& stats);

  /// Appends updates to the WAL (one framed record each), honouring the
  /// fsync policy. Safe to call with an empty batch (no-op).
  void append(const std::vector<Update>& updates);

  /// True when the log has grown past checkpoint_every records.
  bool checkpoint_due() const noexcept {
    return config_.checkpoint_every > 0 &&
           records_since_checkpoint_ >= config_.checkpoint_every;
  }

  /// Writes `snapshot` atomically, then resets the WAL. Ordering matters:
  /// the WAL shrinks only after the checkpoint rename is durable.
  void write_checkpoint(const EngineSnapshot& snapshot);

  std::uint64_t wal_bytes() const noexcept { return wal_->size(); }
  std::uint64_t records_since_checkpoint() const noexcept {
    return records_since_checkpoint_;
  }
  const DurabilityConfig& config() const noexcept { return config_; }

 private:
  std::string wal_path() const { return config_.dir + "/wal.log"; }
  std::string checkpoint_path() const { return config_.dir + "/checkpoint.bin"; }

  DurabilityConfig config_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t records_since_checkpoint_ = 0;
  std::vector<std::uint8_t> scratch_;  ///< reused append encode buffer
};

}  // namespace fastcons

#endif  // FASTCONS_DURABILITY_STORE_HPP
