// Checkpoint file: one atomic snapshot of a replica's durable state.
//
// File layout (little-endian, built on replication/codec):
//   u32  magic "FCK1" (0x314B4346)
//   u32  version (1)
//   u32  self NodeId
//   u64  write_seq
//   u64  next_session
//   u64  next_offer
//   f64  own_demand
//   ...  summary (codec::put_summary)
//   ...  updates (codec::put_updates)
//   u32  neighbour count, then per neighbour: u32 peer | f64 demand
//   u32  crc32 of everything above
//
// Atomicity comes from the writer, not the format: the snapshot is written
// to `<path>.tmp`, fsynced, then renamed over `<path>` (and the directory
// fsynced), so a crash leaves either the old checkpoint or the new one,
// never a blend. The trailing CRC catches the remaining failure mode — a
// torn tmp file renamed by a buggy filesystem or truncated by disk death —
// by making load_checkpoint() reject it instead of restoring garbage.
#ifndef FASTCONS_DURABILITY_CHECKPOINT_HPP
#define FASTCONS_DURABILITY_CHECKPOINT_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace fastcons {

/// Serialises a snapshot (full file image, CRC included).
std::vector<std::uint8_t> encode_checkpoint(const EngineSnapshot& snapshot);

/// Decodes a checkpoint image. Returns nullopt — never throws — on any
/// corruption: bad magic, unsupported version, CRC mismatch, short file.
std::optional<EngineSnapshot> decode_checkpoint(
    std::span<const std::uint8_t> bytes);

/// Loads the checkpoint at `path`; nullopt when missing or corrupt (both
/// mean the same thing to recovery: start from an empty image).
std::optional<EngineSnapshot> load_checkpoint(const std::string& path);

/// Writes `snapshot` to `path` via temp-file + fsync + rename + dir-fsync.
/// Throws TransportError on I/O failure.
void write_checkpoint_atomic(const std::string& path,
                             const EngineSnapshot& snapshot);

}  // namespace fastcons

#endif  // FASTCONS_DURABILITY_CHECKPOINT_HPP
