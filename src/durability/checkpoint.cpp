#include "durability/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "durability/crc32.hpp"
#include "replication/codec.hpp"

namespace fastcons {
namespace {

constexpr std::uint32_t kMagic = 0x314B4346;  // "FCK1"
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void throw_errno(const char* what, const std::string& path) {
  throw TransportError(std::string(what) + " " + path + ": " +
                       std::strerror(errno));
}

/// Directory part of `path` ("" when none). Avoids std::filesystem so the
/// checkpoint writer has no dependency beyond POSIX.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags | O_CLOEXEC);
  if (fd < 0) throw_errno("open for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync", path);
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const EngineSnapshot& snapshot) {
  std::vector<std::uint8_t> out;
  codec::put_u32(out, kMagic);
  codec::put_u32(out, kVersion);
  codec::put_u32(out, snapshot.self);
  codec::put_u64(out, snapshot.write_seq);
  codec::put_u64(out, snapshot.next_session);
  codec::put_u64(out, snapshot.next_offer);
  codec::put_f64(out, snapshot.own_demand);
  codec::put_summary(out, snapshot.summary);
  codec::put_updates(out, snapshot.updates);
  codec::put_u32(out, static_cast<std::uint32_t>(snapshot.neighbour_demand.size()));
  for (const auto& [peer, demand] : snapshot.neighbour_demand) {
    codec::put_u32(out, peer);
    codec::put_f64(out, demand);
  }
  codec::put_u32(out, crc32(out));
  return out;
}

std::optional<EngineSnapshot> decode_checkpoint(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return std::nullopt;
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 4);
  try {
    // The trailing-CRC read lives inside the guard with the rest of the
    // decode: the size check above makes it infallible today, but the
    // never-throws contract must not depend on that staying true.
    codec::Reader crc_reader(bytes.subspan(bytes.size() - 4));
    if (crc32(body) != crc_reader.u32()) return std::nullopt;
    codec::Reader r(body);
    if (r.u32() != kMagic) return std::nullopt;
    if (r.u32() != kVersion) return std::nullopt;
    EngineSnapshot s;
    s.self = r.u32();
    s.write_seq = r.u64();
    s.next_session = r.u64();
    s.next_offer = r.u64();
    s.own_demand = r.f64();
    s.summary = codec::read_summary(r);
    s.updates = codec::read_updates(r);
    const std::uint32_t neighbours = r.count(4 + 8);
    s.neighbour_demand.reserve(neighbours);
    for (std::uint32_t i = 0; i < neighbours; ++i) {
      const NodeId peer = r.u32();
      const double demand = r.f64();
      s.neighbour_demand.emplace_back(peer, demand);
    }
    if (!r.exhausted()) return std::nullopt;
    return s;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

std::optional<EngineSnapshot> load_checkpoint(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;  // missing counts as "no checkpoint"
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return decode_checkpoint(bytes);
}

void write_checkpoint_atomic(const std::string& path,
                             const EngineSnapshot& snapshot) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(snapshot);
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open checkpoint tmp", tmp);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write checkpoint", tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync checkpoint", tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("rename checkpoint", path);
  // The rename itself must survive a crash: sync the containing directory.
  fsync_path(dir_of(path), O_RDONLY | O_DIRECTORY);
}

}  // namespace fastcons
