// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for WAL record and
// checkpoint integrity. Detection only — a mismatch means "stop trusting
// these bytes", never "try to repair them".
#ifndef FASTCONS_DURABILITY_CRC32_HPP
#define FASTCONS_DURABILITY_CRC32_HPP

#include <cstdint>
#include <span>

namespace fastcons {

/// CRC of `data` continuing from `seed` (pass the previous return value to
/// checksum discontiguous regions as one stream). The default seed yields
/// the standard one-shot CRC-32.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

}  // namespace fastcons

#endif  // FASTCONS_DURABILITY_CRC32_HPP
