// Append-only write-ahead log.
//
// Record layout (all integers little-endian, matching replication/codec):
//   u32  payload_length
//   u32  crc32(payload)
//   ...  payload
// Payload layout:
//   u8   record type (kWalRecordUpdate)
//   ...  body (for updates: the replication/codec Update encoding — the
//        exact bytes a SessionPush would carry on the wire)
//
// Replay is torn-tail tolerant: a crash mid-append leaves a truncated or
// CRC-broken final record, and scan_wal() stops at the last fully valid
// record instead of failing. Anything *before* the torn tail is trusted
// (CRC-verified); anything at or after it is discarded, and recovery
// truncates the file back to the valid prefix so future appends never land
// after a corrupt region.
#ifndef FASTCONS_DURABILITY_WAL_HPP
#define FASTCONS_DURABILITY_WAL_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "replication/update.hpp"

namespace fastcons {

/// WAL record types. Append only, never renumber (the log is on-disk ABI).
inline constexpr std::uint8_t kWalRecordUpdate = 1;

/// Upper bound on one record's payload. Same 16 MiB bound as the wire codec:
/// larger announced lengths mean corruption, not a real record.
inline constexpr std::uint32_t kWalMaxPayload = 16u << 20;

/// Bytes of framing per record (length + crc).
inline constexpr std::size_t kWalHeaderBytes = 8;

/// Appends one framed update record to `out`.
void encode_wal_record(std::vector<std::uint8_t>& out, const Update& update);

/// Result of replaying a WAL byte image.
struct WalScanResult {
  std::vector<Update> updates;   ///< decoded update records, log order
  std::size_t records = 0;       ///< valid records seen (incl. skipped types)
  std::size_t valid_bytes = 0;   ///< prefix length covered by valid records
  bool torn_tail = false;        ///< trailing bytes were truncated/corrupt
};

/// Scans a WAL image, decoding every valid record and stopping at the first
/// torn or corrupt one. Never throws: arbitrary bytes are a valid (possibly
/// empty, possibly torn) log. CRC-valid records of unknown type are skipped,
/// so older binaries replay logs written by newer ones.
WalScanResult scan_wal(std::span<const std::uint8_t> bytes);

/// Appending writer over a POSIX fd. Open/write/fsync failures throw
/// TransportError (durability is only as good as the syscalls beneath it,
/// so errors surface instead of being swallowed).
class WalWriter {
 public:
  /// Opens (creating if needed) `path` for appending.
  explicit WalWriter(const std::string& path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends raw bytes (already-framed records).
  void append(std::span<const std::uint8_t> bytes);

  /// fdatasync the log.
  void sync();

  /// Truncates the log to `size` bytes (0 after a checkpoint; the valid
  /// prefix after a torn-tail recovery) and syncs.
  void truncate(std::uint64_t size);

  /// Current size in bytes.
  std::uint64_t size() const noexcept { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace fastcons

#endif  // FASTCONS_DURABILITY_WAL_HPP
