// Live TCP cluster: the same engine that runs in simulation, served over
// real loopback sockets by ReplicaServer (src/net).
//
// Five replicas in a ring, demands from the paper's §2 example. A client
// writes at the lowest-demand replica; the cluster converges through real
// anti-entropy sessions and fast-update pushes on the wire. A sustained
// write load then measures full-visibility latency and link health.
//
//   $ ./examples/live_cluster
#include <chrono>
#include <cstdio>
#include <thread>

#include "net/cluster.hpp"
#include "topology/generators.hpp"

int main() {
  using namespace fastcons;

  Rng rng(3);
  const Graph ring = make_ring(5, {0.0, 0.0}, rng);

  ClusterConfig config;
  config.protocol = ProtocolConfig::fast();
  config.seconds_per_unit = 0.1;  // one session period == 100 ms wall clock
  config.demands = {4.0, 6.0, 3.0, 8.0, 7.0};  // paper §2's A..E
  config.seed = 17;

  LocalCluster cluster(ring, config);
  for (NodeId n = 0; n < cluster.size(); ++n) {
    std::printf("replica %u listening on 127.0.0.1:%u (demand %.0f)\n", n,
                cluster.server(n).port(), config.demands[n]);
  }
  cluster.start();

  const auto started = std::chrono::steady_clock::now();
  std::puts("\nclient writes headline=\"replicas-rule\" at replica 2 (C)");
  cluster.server(2).write("headline", "replicas-rule");

  if (!cluster.wait_for_convergence(15.0)) {
    std::puts("cluster failed to converge in time");
    cluster.stop();
    return 1;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);

  std::printf("\nconverged in %lld ms (%.1f session periods)\n",
              static_cast<long long>(elapsed.count()),
              static_cast<double>(elapsed.count()) / 1000.0 /
                  config.seconds_per_unit);
  for (NodeId n = 0; n < cluster.size(); ++n) {
    const auto value = cluster.server(n).read("headline");
    const auto stats = cluster.server(n).stats();
    std::printf("replica %u: headline=%s  (sessions responded %llu, offers"
                " sent %llu)\n",
                n, value.value_or("<missing>").c_str(),
                static_cast<unsigned long long>(stats.sessions_responded),
                static_cast<unsigned long long>(stats.offers_sent));
  }

  std::puts("\ndriving 100 writes/sec at replica 2 for one second...");
  const LoadReport load = cluster.run_load(2, 100.0, 1.0);
  std::printf("issued %llu writes (%.1f/s achieved), %llu fully visible\n",
              static_cast<unsigned long long>(load.writes_issued),
              load.achieved_writes_per_sec,
              static_cast<unsigned long long>(load.writes_confirmed));
  if (!load.visibility_latency_ms.empty()) {
    std::printf("all-replica visibility p50 %.1fms p99 %.1fms\n",
                load.visibility_latency_ms.quantile(0.50),
                load.visibility_latency_ms.quantile(0.99));
  }
  for (NodeId n = 0; n < cluster.size(); ++n) {
    const NetStats net = cluster.server(n).net_stats();
    std::printf("replica %u links: tx %llu frames / %llu bytes, rx %llu "
                "frames, drops %llu, reconnects %llu\n",
                n, static_cast<unsigned long long>(net.frames_sent),
                static_cast<unsigned long long>(net.bytes_sent),
                static_cast<unsigned long long>(net.frames_received),
                static_cast<unsigned long long>(net.frames_dropped),
                static_cast<unsigned long long>(net.disconnects));
  }
  cluster.stop();
  return 0;
}
