// CDN flash-crowd scenario: the dynamic-demand algorithm of paper §3-4.
//
// A 6x5 grid of edge caches replicates content from an origin. A flash
// crowd forms around one region, then abruptly migrates to the opposite
// corner (think: a story breaking in another timezone). Demand adverts keep
// neighbour tables fresh, so fast-consistency keeps routing new versions of
// the object toward whichever region is currently hot.
//
// The example compares weak consistency with fast consistency on the
// demand-weighted freshness delay each crowd experiences.
//
//   $ ./examples/cdn_flash_crowd
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "demand/demand_model.hpp"
#include "experiment/metrics.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"
#include "topology/metrics.hpp"

namespace {

using namespace fastcons;

struct RunResult {
  double early_delay;  // weighted freshness delay of the first version
  double late_delay;   // ... of the version published after the migration
};

RunResult run(const ProtocolConfig& protocol, std::uint64_t seed) {
  Rng rng(seed);
  Graph grid = make_grid(6, 5, {0.01, 0.03}, rng);
  const NodeId origin = 14;        // centre-ish node publishes content
  const NodeId crowd_a = 0;        // top-left region is hot first
  const NodeId crowd_b = 29;       // bottom-right region afterwards
  const SimTime migration = 6.0;

  auto demand = std::make_shared<MigratingHotspotDemand>(
      bfs_hops(grid, crowd_a), bfs_hops(grid, crowd_b), migration,
      /*peak=*/120.0, /*base=*/2.0);

  SimConfig config;
  config.protocol = protocol;
  config.protocol.advert_period = 0.25;  // the §4 "routing-style" refresh
  config.seed = seed;
  SimNetwork net(std::move(grid), demand, config);

  const UpdateId early = net.schedule_write(origin, "object", "v1", 1.0);
  const UpdateId late = net.schedule_write(origin, "object", "v2",
                                           migration + 1.0);
  net.run_until(migration + 30.0);

  const auto weighted_delay = [&](UpdateId id, SimTime written_at,
                                  SimTime snapshot) {
    std::vector<std::optional<SimTime>> delivery(net.size());
    for (NodeId n = 0; n < net.size(); ++n) {
      const auto at = net.first_delivery(n, id);
      if (at.has_value()) delivery[n] = *at - written_at;
    }
    return demand_weighted_mean_delay(delivery,
                                      demand_snapshot(*demand, snapshot),
                                      20.0);
  };
  return RunResult{weighted_delay(early, 1.0, 1.0),
                   weighted_delay(late, migration + 1.0, migration + 1.0)};
}

}  // namespace

int main() {
  using namespace fastcons;

  std::puts("CDN flash crowd: 6x5 edge grid, hotspot migrates at t=6");
  std::puts("metric: demand-weighted freshness delay (sessions), lower is"
            " better\n");
  std::printf("%-18s %18s %18s\n", "algorithm", "v1 (crowd at A)",
              "v2 (crowd at B)");

  double weak_late = 0.0, fast_late = 0.0;
  const int kRuns = 20;
  for (const char* name : {"weak", "fast"}) {
    double early_sum = 0.0, late_sum = 0.0;
    for (int i = 0; i < kRuns; ++i) {
      const ProtocolConfig protocol = std::string(name) == "weak"
                                          ? ProtocolConfig::weak()
                                          : ProtocolConfig::fast();
      const RunResult r = run(protocol, 1000 + i);
      early_sum += r.early_delay;
      late_sum += r.late_delay;
    }
    std::printf("%-18s %18.3f %18.3f\n", name, early_sum / kRuns,
                late_sum / kRuns);
    (std::string(name) == "weak" ? weak_late : fast_late) = late_sum / kRuns;
  }

  std::printf("\nfast serves the migrated crowd %.1fx fresher than weak\n",
              weak_late / fast_late);
  std::puts("(the dynamic demand tables redirect pushes to region B after"
            " the migration)");
  return 0;
}
