// Usenet-style news mesh — the workload the paper's introduction motivates
// ("This is the case of Usenet news"): many servers, articles posted at
// different servers over time, weakly-consistent flooding between peers.
//
// Forty servers on an Internet-like topology exchange articles; reader
// demand is Zipf-distributed (a few very popular servers). We post a stream
// of articles from random servers and measure how quickly readers — weighted
// by demand — can see them, under all three algorithms. Also demonstrates
// Bayou-style write-log truncation once articles are everywhere.
//
//   $ ./examples/usenet_mesh
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "demand/demand_model.hpp"
#include "experiment/metrics.hpp"
#include "sim_runtime/sim_network.hpp"
#include "stats/online_stats.hpp"
#include "topology/generators.hpp"

int main() {
  using namespace fastcons;

  const std::size_t n = 40;
  const std::size_t articles = 25;
  std::printf("usenet mesh: %zu servers, %zu articles, Zipf reader demand\n\n",
              n, articles);

  std::printf("%-14s %22s %22s %14s\n", "algorithm",
              "weighted delay (sess.)", "mean delay (sessions)",
              "consistent?");
  for (const char* name : {"weak", "demand-order", "fast"}) {
    ProtocolConfig protocol;
    const std::string algo(name);
    if (algo == "weak") protocol = ProtocolConfig::weak();
    else if (algo == "demand-order") protocol = ProtocolConfig::demand_order_only();
    else protocol = ProtocolConfig::fast();

    Rng rng(99);
    Graph topology = make_barabasi_albert(n, 2, {0.01, 0.05}, rng);
    auto demand = std::make_shared<StaticDemand>(
        make_zipf_demand(n, /*s=*/1.0, /*scale=*/100.0, rng));
    SimConfig config;
    config.protocol = protocol;
    config.seed = 7;
    SimNetwork net(std::move(topology), demand, config);

    // Post articles from random servers, one every half session period.
    std::vector<std::pair<UpdateId, SimTime>> posts;
    Rng post_rng(5);
    for (std::size_t a = 0; a < articles; ++a) {
      const auto at = 0.5 + 0.5 * static_cast<double>(a);
      const auto server = static_cast<NodeId>(post_rng.index(n));
      posts.emplace_back(net.schedule_write(
                             server, "article/" + std::to_string(a),
                             "posted-by-" + std::to_string(server), at),
                         at);
    }
    net.run_until(0.5 * static_cast<double>(articles) + 25.0);

    OnlineStats weighted, unweighted;
    const auto demands = net.demand_now();
    for (const auto& [id, posted_at] : posts) {
      std::vector<std::optional<SimTime>> delivery(net.size());
      for (NodeId node = 0; node < net.size(); ++node) {
        const auto at = net.first_delivery(node, id);
        if (at.has_value()) delivery[node] = *at - posted_at;
      }
      weighted.add(demand_weighted_mean_delay(delivery, demands, 25.0));
      double sum = 0.0;
      for (const auto& d : delivery) sum += d.value_or(25.0);
      unweighted.add(sum / static_cast<double>(net.size()));
    }
    std::printf("%-14s %22.3f %22.3f %14s\n", name, weighted.mean(),
                unweighted.mean(), net.all_consistent() ? "yes" : "NO");
  }

  // Log truncation: once every server holds every article, payloads below
  // the stability frontier can be discarded (paper §7 discusses Bayou's
  // truncation policies; this library implements the safe variant).
  {
    Rng rng(123);
    Graph topology = make_ring(6, {0.01, 0.02}, rng);
    auto demand = std::make_shared<StaticDemand>(std::vector<double>(6, 1.0));
    SimConfig config;
    config.protocol = ProtocolConfig::fast();
    config.seed = 3;
    SimNetwork net(std::move(topology), demand, config);
    const UpdateId id = net.schedule_write(0, "old-news", "stale", 0.5);
    net.run_until_update_everywhere(id, 30.0);
    // Everyone has it: the global summary is the stability frontier.
    // (A deployment would gossip summaries; here we read them directly.)
    // Truncate on node 3 and show a later session still works.
    auto& engine = net.engine(3);
    const std::size_t discarded = engine.truncate_log_below(engine.summary());
    std::printf("\ntruncation demo: node 3 discarded %zu payload(s); summary"
                " still covers the id: %s\n",
                discarded,
                engine.summary().contains(id) ? "yes" : "NO");
  }
  return 0;
}
