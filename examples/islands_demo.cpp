// Paper §6 demo: islands of high demand, leader election and the island
// interconnection overlay.
//
// Two metropolitan regions (dense cliques of busy replicas) are joined by a
// long rural chain of idle relays. The demo:
//   1. detects the islands from the demand map,
//   2. elects a leader per island (and cross-checks the distributed
//      flooding election against the centralised result),
//   3. builds minimum-latency leader bridges,
//   4. shows propagation into the far island with and without the overlay.
//
//   $ ./examples/islands_demo
#include <cstdio>
#include <memory>

#include "islands/islands.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

int main() {
  using namespace fastcons;

  Rng rng(11);
  const std::size_t clique = 6, bridge_len = 10;
  Graph topology = make_dumbbell(clique, bridge_len, {0.01, 0.03}, rng);

  std::vector<double> demand(topology.size(), 1.0);
  for (NodeId n = 0; n < clique; ++n) demand[n] = 40.0 + n;           // west
  for (NodeId n = clique; n < 2 * clique; ++n) demand[n] = 55.0 + n;  // east

  std::printf("topology: two %zu-replica metros + %zu-hop rural chain "
              "(%zu nodes total)\n\n", clique, bridge_len, topology.size());

  // 1-2. Detection and election.
  const double threshold = 20.0;
  const auto islands = detect_islands(topology, demand, threshold);
  const auto leaders = elect_leaders(islands, demand);
  std::size_t rounds = 0;
  const auto flood = flood_election(topology, demand, threshold, &rounds);
  for (std::size_t i = 0; i < islands.size(); ++i) {
    std::printf("island %zu: %zu members, leader replica %u (demand %.0f)\n",
                i, islands[i].size(), leaders[i], demand[leaders[i]]);
    for (const NodeId member : islands[i]) {
      if (flood[member] != leaders[i]) {
        std::printf("  !! flooding election disagrees at member %u\n", member);
        return 1;
      }
    }
  }
  std::printf("distributed flooding election agreed in %zu rounds\n\n",
              rounds);

  // 3. Bridges.
  const auto bridges = compute_bridges(topology, leaders);
  for (const Bridge& b : bridges) {
    std::printf("bridge: leader %u <-> leader %u (underlay latency %.3f)\n",
                b.a, b.b, b.latency);
  }

  // 4. Propagation with and without the overlay.
  const NodeId far_hot = leaders.back();
  for (const bool with_overlay : {false, true}) {
    auto model = std::make_shared<StaticDemand>(demand);
    SimConfig config;
    config.protocol = ProtocolConfig::fast();
    config.seed = 21;
    SimNetwork net(Graph(topology), model, config);
    if (with_overlay) {
      for (const Bridge& b : bridges) net.add_overlay_link(b.a, b.b, b.latency);
    }
    const UpdateId id = net.schedule_write(0, "k", "v", 0.5);
    net.run_until_update_everywhere(id, 80.0);
    std::printf("\n%-18s far leader (replica %u) got the update after %.3f"
                " sessions",
                with_overlay ? "with overlay:" : "without overlay:", far_hot,
                net.first_delivery(far_hot, id).value_or(-1.0) - 0.5);
  }
  std::puts("\n\nthe overlay lets updates jump between high-demand regions"
            " instead of crawling across the idle chain (paper §6)");
  return 0;
}
