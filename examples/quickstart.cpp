// Quickstart: the smallest end-to-end use of the library.
//
// Builds an Internet-like 20-replica topology, assigns random demands, runs
// the paper's fast-consistency algorithm in simulation, performs one client
// write and watches it reach every replica — printing how the fast-update
// chain beats the session schedule to the high-demand nodes.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "demand/demand_model.hpp"
#include "sim_runtime/sim_network.hpp"
#include "topology/generators.hpp"

int main() {
  using namespace fastcons;

  // 1. An Internet-like topology (Barabási–Albert preferential attachment,
  //    the model behind the paper's BRITE-generated graphs).
  Rng rng(7);
  Graph topology = make_barabasi_albert(/*n=*/20, /*m=*/2,
                                        /*latency=*/{0.01, 0.05}, rng);

  // 2. Per-replica client demand (requests per unit time), assigned
  //    randomly as in the paper's evaluation.
  auto demand = std::make_shared<StaticDemand>(
      make_uniform_random_demand(topology.size(), 0.0, 100.0, rng));

  // 3. The fast-consistency protocol on a simulated network. Time unit:
  //    1.0 == one mean anti-entropy session period.
  SimConfig config;
  config.protocol = ProtocolConfig::fast();
  config.seed = 42;
  SimNetwork net(std::move(topology), demand, config);

  // Trace every first-time delivery.
  net.on_delivery = [&](NodeId node, const Update& update, DeliveryPath path,
                        SimTime now) {
    std::printf("  t=%6.3f  replica %2u got %s=%s  (demand %5.1f, via %s)\n",
                now, node, update.key.c_str(), update.value.c_str(),
                net.demand_now()[node],
                std::string(delivery_path_name(path)).c_str());
  };

  // 4. A client writes at replica 0.
  std::puts("client write at replica 0, t=0.5:");
  const UpdateId id = net.schedule_write(0, "greeting", "hello-replicas", 0.5);

  // 5. Run until the change is everywhere.
  const bool converged = net.run_until_update_everywhere(id, 30.0);
  std::printf("\nconverged: %s after %.2f session periods\n",
              converged ? "yes" : "NO", net.sim().now() - 0.5);

  // 6. Every replica now serves the same content.
  std::printf("replica 13 reads greeting = %s\n",
              net.engine(13).read("greeting").value_or("<missing>").c_str());

  const EngineStats stats = net.total_stats();
  std::printf("sessions completed: %llu, fast offers sent: %llu\n",
              static_cast<unsigned long long>(stats.sessions_completed),
              static_cast<unsigned long long>(stats.offers_sent));
  return converged ? 0 : 1;
}
